(** The function graph as a flat, int-indexed arena.

    Struct-of-arrays layout: instruction kinds, block membership and the
    intra-block order live in parallel arrays indexed by instruction id;
    block terminators, predecessor arrays and chain heads/tails in arrays
    indexed by block id.  The intra-block order is an intrusive doubly
    linked list over two int arrays ([seq_prev]/[seq_next]); use lists
    are intrusive singly linked chains over an int-cell pool with users
    packed into single ints.  Dead slots carry sentinel markers and are
    threaded onto free-lists (recycled only under {!set_recycle}, which
    defaults to off so allocation order — and therefore printed ids —
    stays reproducible).

    The speculation journal is pooled inside the graph: epoch-stamped
    saved-sets give O(1) "already saved?" tests without hashing, and
    chain snapshots go into one shared int buffer, so a
    checkpoint/rollback cycle allocates almost nothing beyond the
    first-touch snapshots themselves.

    Invariants maintained by this module's mutation API (and checked by
    {!Verifier}):
    - [preds] of a block lists exactly the blocks whose terminator targets
      it, in a stable order;
    - every [Phi] has exactly one input per predecessor, aligned with the
      predecessor order;
    - use chains record every instruction and terminator referencing a
      value. *)

open Types

type user = U_instr of instr_id | U_term of block_id

(* Users packed into one int: instruction users are even, terminator
   users odd.  Keeps use-chain cells unboxed. *)
let enc_instr id = id lsl 1
let enc_term bid = (bid lsl 1) lor 1
let enc_user = function U_instr id -> enc_instr id | U_term b -> enc_term b
let dec_user e = if e land 1 = 0 then U_instr (e lsr 1) else U_term (e lsr 1)

(* Sentinels for [ins_block]. *)
let detached = -1
let dead = -2

type cache = ..
type cache += No_cache

let no_preds : int array = [||]

type t = {
  name : string;
  n_params : int;
  (* -------- instruction arena (parallel arrays, indexed by id) ------ *)
  mutable kinds : instr_kind array;  (** [Null] in dead slots *)
  mutable ins_block : int array;  (** block id, -1 detached, -2 dead *)
  mutable seq_prev : int array;  (** intra-block chain; -1 at ends *)
  mutable seq_next : int array;  (** doubles as free-list link when dead *)
  mutable use_head : int array;  (** first use cell, -1 when none *)
  mutable n_instrs : int;
  mutable free_instr : int;  (** head of dead-slot list, -1 *)
  mutable n_free_instrs : int;
  (* -------- use-chain cell pool ------------------------------------- *)
  mutable cell_user : int array;  (** packed user *)
  mutable cell_next : int array;  (** next cell or -1; free-list link *)
  mutable n_cells : int;
  mutable free_cell : int;
  (* -------- block arena --------------------------------------------- *)
  mutable blk_live : bool array;
  mutable blk_term : terminator array;
  mutable blk_preds : int array array;
      (** immutable arrays, replaced wholesale on change *)
  mutable phi_head : int array;  (** doubles as block free-list link *)
  mutable phi_tail : int array;
  mutable body_head : int array;
  mutable body_tail : int array;
  mutable blk_size : int array;  (** phis + body, maintained *)
  mutable n_blocks : int;
  mutable free_block : int;
  mutable entry : int;
  (* -------- counters / cache ---------------------------------------- *)
  mutable generation : int;
  mutable n_live : int;
  mutable n_live_blocks : int;
  mutable cache : cache;
  mutable recycle : bool;
  (* -------- pooled speculation journal ------------------------------ *)
  mutable journaling : bool;
  mutable epoch : int;  (** bumped per checkpoint; stamps compare to it *)
  mutable i_stamp : int array;  (** instr saved this epoch *)
  mutable b_stamp : int array;
  mutable u_stamp : int array;  (** use chain saved this epoch *)
  mutable j_n_instrs : int;  (** arena watermarks at checkpoint *)
  mutable j_n_blocks : int;
  mutable j_entry : int;
  mutable j_generation : int;
  mutable j_n_live : int;
  mutable j_n_live_blocks : int;
  mutable j_cache : cache;
  mutable j_free_instr : int;
  mutable j_n_free_instrs : int;
  mutable j_free_block : int;
  (* saved instrs: parallel arrays of (id, kind, block) *)
  mutable ji_ids : int array;
  mutable ji_kind : instr_kind array;
  mutable ji_block : int array;
  mutable ji_n : int;
  (* saved blocks: (id, term, preds ref, phi span, body span) *)
  mutable jb_ids : int array;
  mutable jb_term : terminator array;
  mutable jb_preds : int array array;
  mutable jb_phi_off : int array;
  mutable jb_phi_len : int array;
  mutable jb_body_off : int array;
  mutable jb_body_len : int array;
  mutable jb_n : int;
  (* saved use chains: (value, span of packed users) *)
  mutable ju_ids : int array;
  mutable ju_off : int array;
  mutable ju_len : int array;
  mutable ju_n : int;
  (* shared snapshot buffer the spans above index into *)
  mutable jbuf : int array;
  mutable jbuf_n : int;
}

let name g = g.name
let n_params g = g.n_params
let entry g = g.entry
let generation g = g.generation
let n_instrs g = g.n_instrs
let n_blocks g = g.n_blocks
let cache g = g.cache
let set_cache g c = g.cache <- c

let create ?(name = "fn") ~n_params () =
  {
    name;
    n_params;
    kinds = Array.make 16 Null;
    ins_block = Array.make 16 dead;
    seq_prev = Array.make 16 (-1);
    seq_next = Array.make 16 (-1);
    use_head = Array.make 16 (-1);
    n_instrs = 0;
    free_instr = -1;
    n_free_instrs = 0;
    cell_user = Array.make 32 0;
    cell_next = Array.make 32 (-1);
    n_cells = 0;
    free_cell = -1;
    blk_live = Array.make 8 false;
    blk_term = Array.make 8 Unreachable;
    blk_preds = Array.make 8 no_preds;
    phi_head = Array.make 8 (-1);
    phi_tail = Array.make 8 (-1);
    body_head = Array.make 8 (-1);
    body_tail = Array.make 8 (-1);
    blk_size = Array.make 8 0;
    n_blocks = 0;
    free_block = -1;
    entry = -1;
    generation = 0;
    n_live = 0;
    n_live_blocks = 0;
    cache = No_cache;
    recycle = false;
    journaling = false;
    epoch = 0;
    i_stamp = Array.make 16 0;
    b_stamp = Array.make 8 0;
    u_stamp = Array.make 16 0;
    j_n_instrs = 0;
    j_n_blocks = 0;
    j_entry = -1;
    j_generation = 0;
    j_n_live = 0;
    j_n_live_blocks = 0;
    j_cache = No_cache;
    j_free_instr = -1;
    j_n_free_instrs = 0;
    j_free_block = -1;
    ji_ids = Array.make 32 0;
    ji_kind = Array.make 32 Null;
    ji_block = Array.make 32 0;
    ji_n = 0;
    jb_ids = Array.make 16 0;
    jb_term = Array.make 16 Unreachable;
    jb_preds = Array.make 16 no_preds;
    jb_phi_off = Array.make 16 0;
    jb_phi_len = Array.make 16 0;
    jb_body_off = Array.make 16 0;
    jb_body_len = Array.make 16 0;
    jb_n = 0;
    ju_ids = Array.make 32 0;
    ju_off = Array.make 32 0;
    ju_len = Array.make 32 0;
    ju_n = 0;
    jbuf = Array.make 64 0;
    jbuf_n = 0;
  }

(* ------------------------------------------------------------------ *)
(* Arena growth                                                        *)
(* ------------------------------------------------------------------ *)

let grow_int_array a n fill =
  let a' = Array.make n fill in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let grow_instrs g =
  let cap = Array.length g.kinds in
  if g.n_instrs = cap then begin
    let n = 2 * cap in
    let kinds = Array.make n Null in
    Array.blit g.kinds 0 kinds 0 cap;
    g.kinds <- kinds;
    g.ins_block <- grow_int_array g.ins_block n dead;
    g.seq_prev <- grow_int_array g.seq_prev n (-1);
    g.seq_next <- grow_int_array g.seq_next n (-1);
    g.use_head <- grow_int_array g.use_head n (-1);
    g.i_stamp <- grow_int_array g.i_stamp n 0;
    g.u_stamp <- grow_int_array g.u_stamp n 0
  end

let grow_blocks g =
  let cap = Array.length g.blk_term in
  if g.n_blocks = cap then begin
    let n = 2 * cap in
    let live = Array.make n false in
    Array.blit g.blk_live 0 live 0 cap;
    g.blk_live <- live;
    let terms = Array.make n Unreachable in
    Array.blit g.blk_term 0 terms 0 cap;
    g.blk_term <- terms;
    let preds = Array.make n no_preds in
    Array.blit g.blk_preds 0 preds 0 cap;
    g.blk_preds <- preds;
    g.phi_head <- grow_int_array g.phi_head n (-1);
    g.phi_tail <- grow_int_array g.phi_tail n (-1);
    g.body_head <- grow_int_array g.body_head n (-1);
    g.body_tail <- grow_int_array g.body_tail n (-1);
    g.blk_size <- grow_int_array g.blk_size n 0;
    g.b_stamp <- grow_int_array g.b_stamp n 0
  end

let grow_cells g =
  let cap = Array.length g.cell_user in
  if g.n_cells = cap then begin
    let n = 2 * cap in
    g.cell_user <- grow_int_array g.cell_user n 0;
    g.cell_next <- grow_int_array g.cell_next n (-1)
  end

(* ------------------------------------------------------------------ *)
(* Generation + journal bookkeeping                                    *)
(* ------------------------------------------------------------------ *)

let touch g = g.generation <- g.generation + 1

let jbuf_push g v =
  if g.jbuf_n = Array.length g.jbuf then
    g.jbuf <- grow_int_array g.jbuf (2 * g.jbuf_n) 0;
  g.jbuf.(g.jbuf_n) <- v;
  g.jbuf_n <- g.jbuf_n + 1

(* Save the pre-mutation state of an instruction / block / use chain the
   first time it is touched after a checkpoint.  Slots allocated after
   the checkpoint need no saving: rollback truncates the arenas back to
   the watermark.  Epoch stamps give the O(1) "already saved?" test. *)

let save_instr g id =
  if g.journaling && id < g.j_n_instrs && g.i_stamp.(id) <> g.epoch then begin
    g.i_stamp.(id) <- g.epoch;
    let n = g.ji_n in
    if n = Array.length g.ji_ids then begin
      let cap = 2 * n in
      g.ji_ids <- grow_int_array g.ji_ids cap 0;
      let k = Array.make cap Null in
      Array.blit g.ji_kind 0 k 0 n;
      g.ji_kind <- k;
      g.ji_block <- grow_int_array g.ji_block cap 0
    end;
    g.ji_ids.(n) <- id;
    g.ji_kind.(n) <- g.kinds.(id);
    g.ji_block.(n) <- g.ins_block.(id);
    g.ji_n <- n + 1
  end

let save_block g id =
  if g.journaling && id < g.j_n_blocks && g.b_stamp.(id) <> g.epoch then begin
    g.b_stamp.(id) <- g.epoch;
    let n = g.jb_n in
    if n = Array.length g.jb_ids then begin
      let cap = 2 * n in
      g.jb_ids <- grow_int_array g.jb_ids cap 0;
      let t = Array.make cap Unreachable in
      Array.blit g.jb_term 0 t 0 n;
      g.jb_term <- t;
      let p = Array.make cap no_preds in
      Array.blit g.jb_preds 0 p 0 n;
      g.jb_preds <- p;
      g.jb_phi_off <- grow_int_array g.jb_phi_off cap 0;
      g.jb_phi_len <- grow_int_array g.jb_phi_len cap 0;
      g.jb_body_off <- grow_int_array g.jb_body_off cap 0;
      g.jb_body_len <- grow_int_array g.jb_body_len cap 0
    end;
    g.jb_ids.(n) <- id;
    g.jb_term.(n) <- g.blk_term.(id);
    g.jb_preds.(n) <- g.blk_preds.(id);
    let off = g.jbuf_n in
    let i = ref g.phi_head.(id) in
    while !i >= 0 do
      jbuf_push g !i;
      i := g.seq_next.(!i)
    done;
    g.jb_phi_off.(n) <- off;
    g.jb_phi_len.(n) <- g.jbuf_n - off;
    let off = g.jbuf_n in
    let i = ref g.body_head.(id) in
    while !i >= 0 do
      jbuf_push g !i;
      i := g.seq_next.(!i)
    done;
    g.jb_body_off.(n) <- off;
    g.jb_body_len.(n) <- g.jbuf_n - off;
    g.jb_n <- n + 1
  end

let save_uses g v =
  if g.journaling && v >= 0 && v < g.j_n_instrs && g.u_stamp.(v) <> g.epoch
  then begin
    g.u_stamp.(v) <- g.epoch;
    let n = g.ju_n in
    if n = Array.length g.ju_ids then begin
      let cap = 2 * n in
      g.ju_ids <- grow_int_array g.ju_ids cap 0;
      g.ju_off <- grow_int_array g.ju_off cap 0;
      g.ju_len <- grow_int_array g.ju_len cap 0
    end;
    let off = g.jbuf_n in
    let c = ref g.use_head.(v) in
    while !c >= 0 do
      jbuf_push g g.cell_user.(!c);
      c := g.cell_next.(!c)
    done;
    g.ju_ids.(n) <- v;
    g.ju_off.(n) <- off;
    g.ju_len.(n) <- g.jbuf_n - off;
    g.ju_n <- n + 1
  end

(* Hooks kept public for parity with the old hand-mutation protocol
   (terminator patches now go through [patch_term]/[transfer_term]). *)
let record_block g id =
  save_block g id;
  touch g

let record_instr g id =
  save_instr g id;
  touch g

(* Drop heap references retained by the pooled journal arrays once a
   speculation episode ends, so committed-away kinds/terminators don't
   outlive the graph state that held them. *)
let scrub_journal g =
  for k = 0 to g.ji_n - 1 do
    g.ji_kind.(k) <- Null
  done;
  for k = 0 to g.jb_n - 1 do
    g.jb_term.(k) <- Unreachable;
    g.jb_preds.(k) <- no_preds
  done;
  g.ji_n <- 0;
  g.jb_n <- 0;
  g.ju_n <- 0;
  g.jbuf_n <- 0;
  g.j_cache <- No_cache

let checkpoint g =
  if g.journaling then
    invalid_arg "Graph.checkpoint: speculation already active";
  g.epoch <- g.epoch + 1;
  g.ji_n <- 0;
  g.jb_n <- 0;
  g.ju_n <- 0;
  g.jbuf_n <- 0;
  g.j_n_instrs <- g.n_instrs;
  g.j_n_blocks <- g.n_blocks;
  g.j_entry <- g.entry;
  g.j_generation <- g.generation;
  g.j_n_live <- g.n_live;
  g.j_n_live_blocks <- g.n_live_blocks;
  g.j_cache <- g.cache;
  g.j_free_instr <- g.free_instr;
  g.j_n_free_instrs <- g.n_free_instrs;
  g.j_free_block <- g.free_block;
  g.journaling <- true

let commit g =
  if not g.journaling then invalid_arg "Graph.commit: no active checkpoint";
  g.journaling <- false;
  scrub_journal g

(* Use-cell alloc/free.  Unlike instruction/block slots, cells may be
   recycled even during speculation: chain snapshots store packed users,
   not cell indices, so rollback rebuilds chains from values and never
   needs an old cell's contents. *)
let alloc_cell g user next =
  if g.free_cell >= 0 then begin
    let c = g.free_cell in
    g.free_cell <- g.cell_next.(c);
    g.cell_user.(c) <- user;
    g.cell_next.(c) <- next;
    c
  end
  else begin
    grow_cells g;
    let c = g.n_cells in
    g.cell_user.(c) <- user;
    g.cell_next.(c) <- next;
    g.n_cells <- c + 1;
    c
  end

let free_chain_cells g v =
  let c = ref g.use_head.(v) in
  while !c >= 0 do
    let next = g.cell_next.(!c) in
    g.cell_next.(!c) <- g.free_cell;
    g.free_cell <- !c;
    c := next
  done;
  g.use_head.(v) <- -1

let rollback g =
  if not g.journaling then invalid_arg "Graph.rollback: no active checkpoint";
  g.journaling <- false;
  (* Use chains: free the current cells of every touched chain, then
     rebuild it from the snapshot (reusing the cells just freed). *)
  for k = 0 to g.ju_n - 1 do
    let v = g.ju_ids.(k) in
    free_chain_cells g v;
    let off = g.ju_off.(k) and len = g.ju_len.(k) in
    let tail = ref (-1) in
    for j = len - 1 downto 0 do
      tail := alloc_cell g g.jbuf.(off + j) !tail
    done;
    g.use_head.(v) <- !tail
  done;
  (* Chains of values allocated during speculation die with them. *)
  for v = g.j_n_instrs to g.n_instrs - 1 do
    free_chain_cells g v
  done;
  (* Saved instructions. *)
  for k = 0 to g.ji_n - 1 do
    let id = g.ji_ids.(k) in
    g.kinds.(id) <- g.ji_kind.(k);
    g.ins_block.(id) <- g.ji_block.(k);
    if g.ji_block.(k) = detached then begin
      g.seq_prev.(id) <- -1;
      g.seq_next.(id) <- -1
    end
  done;
  (* Truncate the instruction arena to the watermark. *)
  for id = g.j_n_instrs to g.n_instrs - 1 do
    g.kinds.(id) <- Null;
    g.ins_block.(id) <- dead;
    g.seq_prev.(id) <- -1;
    g.seq_next.(id) <- -1;
    g.use_head.(id) <- -1
  done;
  g.n_instrs <- g.j_n_instrs;
  (* Saved blocks: scalar state plus chain rebuilds from snapshots. *)
  for k = 0 to g.jb_n - 1 do
    let bid = g.jb_ids.(k) in
    g.blk_live.(bid) <- true;
    g.blk_term.(bid) <- g.jb_term.(k);
    g.blk_preds.(bid) <- g.jb_preds.(k);
    let relink off len head tail =
      let prev = ref (-1) in
      for j = 0 to len - 1 do
        let id = g.jbuf.(off + j) in
        g.seq_prev.(id) <- !prev;
        g.seq_next.(id) <- -1;
        if !prev >= 0 then g.seq_next.(!prev) <- id else head.(bid) <- id;
        prev := id
      done;
      if len = 0 then head.(bid) <- -1;
      tail.(bid) <- !prev
    in
    relink g.jb_phi_off.(k) g.jb_phi_len.(k) g.phi_head g.phi_tail;
    relink g.jb_body_off.(k) g.jb_body_len.(k) g.body_head g.body_tail;
    g.blk_size.(bid) <- g.jb_phi_len.(k) + g.jb_body_len.(k)
  done;
  (* Truncate the block arena. *)
  for bid = g.j_n_blocks to g.n_blocks - 1 do
    g.blk_live.(bid) <- false;
    g.blk_term.(bid) <- Unreachable;
    g.blk_preds.(bid) <- no_preds;
    g.phi_head.(bid) <- -1;
    g.phi_tail.(bid) <- -1;
    g.body_head.(bid) <- -1;
    g.body_tail.(bid) <- -1;
    g.blk_size.(bid) <- 0
  done;
  g.n_blocks <- g.j_n_blocks;
  g.entry <- g.j_entry;
  (* Restoring the generation (not bumping it) is sound — the graph is
     again identical to its checkpoint state — and revives any analysis
     cached in the restored slot. *)
  g.generation <- g.j_generation;
  g.n_live <- g.j_n_live;
  g.n_live_blocks <- g.j_n_live_blocks;
  g.cache <- g.j_cache;
  (* Free lists only grew during speculation (allocation was bump-only),
     and everything pushed since the checkpoint is alive again. *)
  g.free_instr <- g.j_free_instr;
  g.n_free_instrs <- g.j_n_free_instrs;
  g.free_block <- g.j_free_block;
  scrub_journal g

let in_speculation g = g.journaling

(* ------------------------------------------------------------------ *)
(* Arena access                                                        *)
(* ------------------------------------------------------------------ *)

let instr_exists g id =
  id >= 0 && id < g.n_instrs && g.ins_block.(id) <> dead

let block_exists g id = id >= 0 && id < g.n_blocks && g.blk_live.(id)

let check_instr g id =
  if id < 0 || id >= g.n_instrs || g.ins_block.(id) = dead then
    invalid_arg (Printf.sprintf "Graph.instr: dead instruction %d" id)

let check_block g id =
  if id < 0 || id >= g.n_blocks || not g.blk_live.(id) then
    invalid_arg (Printf.sprintf "Graph.block: dead block %d" id)

let kind g id =
  check_instr g id;
  g.kinds.(id)

let block_of g id =
  check_instr g id;
  g.ins_block.(id)

let uses g v =
  if v < 0 || v >= g.n_instrs then invalid_arg "Graph.uses";
  let acc = ref [] in
  let c = ref g.use_head.(v) in
  while !c >= 0 do
    acc := dec_user g.cell_user.(!c) :: !acc;
    c := g.cell_next.(!c)
  done;
  List.rev !acc

let iter_uses g v f =
  if v >= 0 && v < g.n_instrs then begin
    let c = ref g.use_head.(v) in
    while !c >= 0 do
      f (dec_user g.cell_user.(!c));
      c := g.cell_next.(!c)
    done
  end

(* Zero-allocation variant: hands out the packed encoding (no [user]
   variant per visit); decode with [user_is_term] / [user_target]. *)
let iter_uses_enc g v f =
  if v >= 0 && v < g.n_instrs then begin
    let c = ref g.use_head.(v) in
    while !c >= 0 do
      f g.cell_user.(!c);
      c := g.cell_next.(!c)
    done
  end

let user_is_term e = e land 1 = 1
let user_target e = e asr 1

let has_uses g v = v >= 0 && v < g.n_instrs && g.use_head.(v) >= 0

let is_phi g id = match kind g id with Phi _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Use-chain maintenance                                               *)
(* ------------------------------------------------------------------ *)

let add_use_enc g v e =
  if v >= 0 then begin
    save_uses g v;
    g.use_head.(v) <- alloc_cell g e g.use_head.(v)
  end

(* Remove the first (most recent) matching cell, mirroring the old
   list-based first-occurrence removal. *)
let remove_use_enc g v e =
  if v >= 0 then begin
    save_uses g v;
    let c = ref g.use_head.(v) and prev = ref (-1) and go = ref true in
    while !go && !c >= 0 do
      if g.cell_user.(!c) = e then begin
        (if !prev < 0 then g.use_head.(v) <- g.cell_next.(!c)
         else g.cell_next.(!prev) <- g.cell_next.(!c));
        g.cell_next.(!c) <- g.free_cell;
        g.free_cell <- !c;
        go := false
      end
      else begin
        prev := !c;
        c := g.cell_next.(!c)
      end
    done
  end

let add_use g v user = add_use_enc g v (enc_user user)
let remove_use g v user = remove_use_enc g v (enc_user user)

let iter_term_inputs f = function
  | Jump _ | Unreachable | Return None -> ()
  | Return (Some v) -> f v
  | Branch { cond; _ } -> f cond

(* ------------------------------------------------------------------ *)
(* Intra-block chains                                                  *)
(* ------------------------------------------------------------------ *)

(* Callers must have journaled the block (save_block) first. *)
let chain_append g bid id ~phi =
  let head = if phi then g.phi_head else g.body_head in
  let tail = if phi then g.phi_tail else g.body_tail in
  let t = tail.(bid) in
  g.seq_prev.(id) <- t;
  g.seq_next.(id) <- -1;
  if t >= 0 then g.seq_next.(t) <- id else head.(bid) <- id;
  tail.(bid) <- id;
  g.blk_size.(bid) <- g.blk_size.(bid) + 1

let chain_prepend g bid id ~phi =
  let head = if phi then g.phi_head else g.body_head in
  let tail = if phi then g.phi_tail else g.body_tail in
  let h = head.(bid) in
  g.seq_prev.(id) <- -1;
  g.seq_next.(id) <- h;
  if h >= 0 then g.seq_prev.(h) <- id else tail.(bid) <- id;
  head.(bid) <- id;
  g.blk_size.(bid) <- g.blk_size.(bid) + 1

(* Which chain [id] is on is decided positionally (is it a chain's
   head/tail?), not from its kind: a dead phi may have been rewritten to
   a non-phi kind while still sitting in the phi chain (DCE does this to
   break input cycles before deletion). *)
let chain_remove g bid id =
  let p = g.seq_prev.(id) and n = g.seq_next.(id) in
  (if p >= 0 then g.seq_next.(p) <- n
   else if g.phi_head.(bid) = id then g.phi_head.(bid) <- n
   else g.body_head.(bid) <- n);
  (if n >= 0 then g.seq_prev.(n) <- p
   else if g.phi_tail.(bid) = id then g.phi_tail.(bid) <- p
   else g.body_tail.(bid) <- p);
  g.seq_prev.(id) <- -1;
  g.seq_next.(id) <- -1;
  g.blk_size.(bid) <- g.blk_size.(bid) - 1

let kind_is_phi = function Phi _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let add_block g =
  let id =
    if g.recycle && (not g.journaling) && g.free_block >= 0 then begin
      let id = g.free_block in
      g.free_block <- g.phi_head.(id);
      g.phi_head.(id) <- -1;
      id
    end
    else begin
      grow_blocks g;
      let id = g.n_blocks in
      g.n_blocks <- id + 1;
      id
    end
  in
  g.blk_live.(id) <- true;
  g.blk_term.(id) <- Unreachable;
  g.blk_preds.(id) <- no_preds;
  g.phi_head.(id) <- -1;
  g.phi_tail.(id) <- -1;
  g.body_head.(id) <- -1;
  g.body_tail.(id) <- -1;
  g.blk_size.(id) <- 0;
  g.n_live_blocks <- g.n_live_blocks + 1;
  if g.entry = -1 then g.entry <- id;
  touch g;
  id

let set_entry g bid =
  g.entry <- bid;
  touch g

(* Allocate the instruction without attaching it to a block. *)
let alloc_instr g kind =
  let id =
    if g.recycle && (not g.journaling) && g.free_instr >= 0 then begin
      let id = g.free_instr in
      g.free_instr <- g.seq_next.(id);
      g.n_free_instrs <- g.n_free_instrs - 1;
      id
    end
    else begin
      grow_instrs g;
      let id = g.n_instrs in
      g.n_instrs <- id + 1;
      id
    end
  in
  g.kinds.(id) <- kind;
  g.ins_block.(id) <- detached;
  g.seq_prev.(id) <- -1;
  g.seq_next.(id) <- -1;
  g.use_head.(id) <- -1;
  g.n_live <- g.n_live + 1;
  touch g;
  iter_inputs (fun v -> add_use_enc g v (enc_instr id)) kind;
  id

let append g bid kind =
  let id = alloc_instr g kind in
  save_block g bid;
  check_block g bid;
  g.ins_block.(id) <- bid;
  chain_append g bid id ~phi:(kind_is_phi kind);
  id

let prepend g bid kind =
  let id = alloc_instr g kind in
  save_block g bid;
  check_block g bid;
  g.ins_block.(id) <- bid;
  chain_prepend g bid id ~phi:(kind_is_phi kind);
  id

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let set_kind g id new_kind =
  save_instr g id;
  touch g;
  check_instr g id;
  iter_inputs (fun v -> remove_use_enc g v (enc_instr id)) g.kinds.(id);
  g.kinds.(id) <- new_kind;
  iter_inputs (fun v -> add_use_enc g v (enc_instr id)) new_kind

let succs_of_term = function
  | Jump b -> [ b ]
  | Branch { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Return _ | Unreachable -> []

let term g bid =
  check_block g bid;
  g.blk_term.(bid)

let succs g bid = succs_of_term (term g bid)

let preds g bid =
  check_block g bid;
  Array.to_list g.blk_preds.(bid)

let pred_count g bid =
  check_block g bid;
  Array.length g.blk_preds.(bid)

let pred_nth g bid i =
  check_block g bid;
  g.blk_preds.(bid).(i)

let iter_preds g bid f =
  check_block g bid;
  Array.iter f g.blk_preds.(bid)

let pred_index g bid pred =
  check_block g bid;
  let ps = g.blk_preds.(bid) in
  let n = Array.length ps in
  let rec find i =
    if i = n then
      invalid_arg
        (Printf.sprintf "Graph.pred_index: b%d is not a predecessor of b%d"
           pred bid)
    else if ps.(i) = pred then i
    else find (i + 1)
  in
  find 0

let iter_phis g bid f =
  check_block g bid;
  let i = ref g.phi_head.(bid) in
  while !i >= 0 do
    let next = g.seq_next.(!i) in
    f !i;
    i := next
  done

let iter_body g bid f =
  check_block g bid;
  let i = ref g.body_head.(bid) in
  while !i >= 0 do
    let next = g.seq_next.(!i) in
    f !i;
    i := next
  done

let iter_block_instrs g bid f =
  iter_phis g bid f;
  iter_body g bid f

let phis g bid =
  let acc = ref [] in
  iter_phis g bid (fun id -> acc := id :: !acc);
  List.rev !acc

let body g bid =
  let acc = ref [] in
  iter_body g bid (fun id -> acc := id :: !acc);
  List.rev !acc

let block_instrs g bid =
  let acc = ref [] in
  iter_block_instrs g bid (fun id -> acc := id :: !acc);
  List.rev !acc

let block_size g bid =
  check_block g bid;
  g.blk_size.(bid)

(* Drop predecessor [pred] from [bid], removing the matching phi input. *)
let remove_pred g bid pred =
  save_block g bid;
  touch g;
  let idx = pred_index g bid pred in
  let ps = g.blk_preds.(bid) in
  let n = Array.length ps in
  g.blk_preds.(bid) <-
    Array.init (n - 1) (fun i -> if i < idx then ps.(i) else ps.(i + 1));
  iter_phis g bid (fun phi_id ->
      match kind g phi_id with
      | Phi inputs ->
          let inputs' =
            Array.init
              (Array.length inputs - 1)
              (fun i -> if i < idx then inputs.(i) else inputs.(i + 1))
          in
          set_kind g phi_id (Phi inputs')
      | _ -> assert false)

(* Add [pred] as a new predecessor of [bid]; each phi gets [filler] as its
   input for the new edge. *)
let add_pred g bid pred ~filler =
  save_block g bid;
  touch g;
  let ps = g.blk_preds.(bid) in
  let n = Array.length ps in
  g.blk_preds.(bid) <-
    Array.init (n + 1) (fun i -> if i < n then ps.(i) else pred);
  let i = ref 0 in
  iter_phis g bid (fun phi_id ->
      (match kind g phi_id with
      | Phi inputs ->
          let f = filler !i phi_id in
          set_kind g phi_id (Phi (Array.append inputs [| f |]))
      | _ -> assert false);
      incr i)

let set_term g bid term =
  (* Canonicalize a branch with identical targets into a jump so successor
     lists never contain duplicates. *)
  let term =
    match term with
    | Branch { if_true; if_false; _ } when if_true = if_false -> Jump if_true
    | t -> t
  in
  save_block g bid;
  touch g;
  check_block g bid;
  let old_term = g.blk_term.(bid) in
  let old_succs = succs_of_term old_term in
  let new_succs = succs_of_term term in
  iter_term_inputs (fun v -> remove_use_enc g v (enc_term bid)) old_term;
  List.iter
    (fun s -> if not (List.mem s new_succs) then remove_pred g s bid)
    old_succs;
  g.blk_term.(bid) <- term;
  iter_term_inputs (fun v -> add_use_enc g v (enc_term bid)) term;
  List.iter
    (fun s ->
      if not (List.mem s old_succs) then
        add_pred g s bid ~filler:(fun _ _ -> invalid_value))
    new_succs

let patch_term g bid term =
  save_block g bid;
  touch g;
  check_block g bid;
  let old_term = g.blk_term.(bid) in
  assert (succs_of_term old_term = succs_of_term term);
  iter_term_inputs (fun v -> remove_use_enc g v (enc_term bid)) old_term;
  g.blk_term.(bid) <- term;
  iter_term_inputs (fun v -> add_use_enc g v (enc_term bid)) term

let transfer_term g ~src ~dst =
  save_block g src;
  save_block g dst;
  touch g;
  check_block g src;
  check_block g dst;
  (match g.blk_term.(dst) with
  | Unreachable -> ()
  | _ -> invalid_arg "Graph.transfer_term: destination has a terminator");
  let t = g.blk_term.(src) in
  iter_term_inputs (fun v -> remove_use_enc g v (enc_term src)) t;
  g.blk_term.(src) <- Unreachable;
  g.blk_term.(dst) <- t;
  iter_term_inputs (fun v -> add_use_enc g v (enc_term dst)) t;
  (* Rename the edge source in each successor's predecessor list; phi
     inputs keep their positions. *)
  List.iter
    (fun s ->
      save_block g s;
      g.blk_preds.(s) <-
        Array.map (fun p -> if p = src then dst else p) g.blk_preds.(s))
    (succs_of_term t)

let redirect_edge g ~from_block ~old_target ~new_target =
  if old_target <> new_target then begin
    save_block g from_block;
    touch g;
    check_block g from_block;
    (match g.blk_term.(from_block) with
    | Jump t when t = old_target -> g.blk_term.(from_block) <- Jump new_target
    | Branch br when br.if_true = old_target && br.if_false = old_target ->
        g.blk_term.(from_block) <-
          Branch { br with if_true = new_target; if_false = new_target }
    | Branch br when br.if_true = old_target ->
        g.blk_term.(from_block) <- Branch { br with if_true = new_target }
    | Branch br when br.if_false = old_target ->
        g.blk_term.(from_block) <- Branch { br with if_false = new_target }
    | _ ->
        invalid_arg
          (Printf.sprintf "Graph.redirect_edge: b%d does not target b%d"
             from_block old_target));
    remove_pred g old_target from_block;
    add_pred g new_target from_block ~filler:(fun _ _ -> invalid_value)
  end

let replace_uses g v ~by =
  (* Materialize the user chain first: set_kind rewrites it underneath. *)
  let users = ref [] in
  let c = ref (if v >= 0 && v < g.n_instrs then g.use_head.(v) else -1) in
  while !c >= 0 do
    users := g.cell_user.(!c) :: !users;
    c := g.cell_next.(!c)
  done;
  List.iter
    (fun e ->
      if e land 1 = 0 then begin
        let id = e lsr 1 in
        set_kind g id
          (map_inputs (fun x -> if x = v then by else x) (kind g id))
      end
      else
        let bid = e lsr 1 in
        match g.blk_term.(bid) with
        | Return (Some x) when x = v -> patch_term g bid (Return (Some by))
        | Branch br when br.cond = v ->
            patch_term g bid (Branch { br with cond = by })
        | _ -> ())
    (List.rev !users)

let remove_instr g id =
  check_instr g id;
  if g.use_head.(id) >= 0 then
    invalid_arg (Printf.sprintf "Graph.remove_instr: %d still has uses" id);
  save_instr g id;
  save_uses g id;
  touch g;
  iter_inputs (fun v -> remove_use_enc g v (enc_instr id)) g.kinds.(id);
  let bid = g.ins_block.(id) in
  if bid >= 0 then begin
    save_block g bid;
    chain_remove g bid id
  end;
  g.kinds.(id) <- Null;
  g.ins_block.(id) <- dead;
  g.use_head.(id) <- -1;
  g.seq_prev.(id) <- -1;
  g.seq_next.(id) <- g.free_instr;
  g.free_instr <- id;
  g.n_free_instrs <- g.n_free_instrs + 1;
  g.n_live <- g.n_live - 1

let detach g id =
  check_instr g id;
  let bid = g.ins_block.(id) in
  if bid >= 0 then begin
    save_instr g id;
    save_block g bid;
    touch g;
    chain_remove g bid id;
    g.ins_block.(id) <- detached
  end

let attach g id bid =
  check_instr g id;
  assert (g.ins_block.(id) = detached);
  save_instr g id;
  save_block g bid;
  touch g;
  check_block g bid;
  g.ins_block.(id) <- bid;
  chain_append g bid id ~phi:(kind_is_phi g.kinds.(id))

let attach_front g id bid =
  check_instr g id;
  assert (g.ins_block.(id) = detached);
  save_instr g id;
  save_block g bid;
  touch g;
  check_block g bid;
  g.ins_block.(id) <- bid;
  chain_prepend g bid id ~phi:(kind_is_phi g.kinds.(id))

(* Delete one instruction slot without touching its block chain (the
   caller resets the whole chain).  Shared by remove_block and
   remove_unreachable_blocks. *)
let kill_slot g id =
  save_instr g id;
  save_uses g id;
  iter_inputs (fun v -> remove_use_enc g v (enc_instr id)) g.kinds.(id);
  free_chain_cells g id;
  g.kinds.(id) <- Null;
  g.ins_block.(id) <- dead;
  g.seq_prev.(id) <- -1;
  g.seq_next.(id) <- g.free_instr;
  g.free_instr <- id;
  g.n_free_instrs <- g.n_free_instrs + 1;
  g.n_live <- g.n_live - 1

(* Free a dead block's slot and thread it on the block free list. *)
let kill_block_slot g bid =
  g.blk_live.(bid) <- false;
  g.blk_term.(bid) <- Unreachable;
  g.blk_preds.(bid) <- no_preds;
  g.phi_tail.(bid) <- -1;
  g.body_head.(bid) <- -1;
  g.body_tail.(bid) <- -1;
  g.blk_size.(bid) <- 0;
  g.phi_head.(bid) <- g.free_block;
  g.free_block <- bid;
  g.n_live_blocks <- g.n_live_blocks - 1

let remove_block g bid =
  check_block g bid;
  set_term g bid Unreachable;
  save_block g bid;
  touch g;
  (* Collect members first: kill_slot must not race the chain walk. *)
  let members = block_instrs g bid in
  List.iter (fun id -> kill_slot g id) members;
  (* Predecessor edges must have been redirected already. *)
  assert (Array.length g.blk_preds.(bid) = 0);
  kill_block_slot g bid

(* ------------------------------------------------------------------ *)
(* Iteration                                                           *)
(* ------------------------------------------------------------------ *)

let iter_blocks g f =
  for id = 0 to g.n_blocks - 1 do
    if g.blk_live.(id) then f id
  done

let fold_blocks g f acc =
  let acc = ref acc in
  iter_blocks g (fun b -> acc := f !acc b);
  !acc

let block_ids g = List.rev (fold_blocks g (fun acc b -> b :: acc) [])

let iter_instrs g f =
  for id = 0 to g.n_instrs - 1 do
    if g.ins_block.(id) <> dead then f id
  done

let fold_instrs g f acc =
  let acc = ref acc in
  iter_instrs g (fun i -> acc := f !acc i);
  !acc

(* Maintained incrementally by the mutation API (alloc / remove) so the
   hot per-duplication work charge in the driver is O(1) instead of an
   arena scan. *)
let live_instr_count g = g.n_live
let live_block_count g = g.n_live_blocks

let replace_pred g bid ~old_pred ~new_pred =
  save_block g bid;
  touch g;
  check_block g bid;
  g.blk_preds.(bid) <-
    Array.map (fun p -> if p = old_pred then new_pred else p) g.blk_preds.(bid)

(* ------------------------------------------------------------------ *)
(* Free lists / compaction                                             *)
(* ------------------------------------------------------------------ *)

let set_recycle g b = g.recycle <- b
let recycling g = g.recycle
let free_instr_slots g = g.n_free_instrs

let compact g =
  if g.journaling then invalid_arg "Graph.compact: speculation active";
  let n = g.n_instrs in
  let map = Array.make (max 1 n) (-1) in
  let next = ref 0 in
  let number id =
    map.(id) <- !next;
    incr next
  in
  iter_blocks g (fun bid -> iter_block_instrs g bid number);
  (* Detached live instructions keep their relative order at the end. *)
  for id = 0 to n - 1 do
    if g.ins_block.(id) = detached then number id
  done;
  let live = !next in
  let cap = max 16 live in
  let kinds = Array.make cap Null in
  let ins_block = Array.make cap dead in
  let remap v = if v >= 0 then map.(v) else v in
  for id = 0 to n - 1 do
    let id' = map.(id) in
    if id' >= 0 then begin
      kinds.(id') <- map_inputs remap g.kinds.(id);
      ins_block.(id') <- g.ins_block.(id)
    end
  done;
  let old_order =
    List.rev
      (fold_blocks g (fun acc bid -> (bid, phis g bid, body g bid) :: acc) [])
  in
  g.kinds <- kinds;
  g.ins_block <- ins_block;
  g.seq_prev <- Array.make cap (-1);
  g.seq_next <- Array.make cap (-1);
  g.use_head <- Array.make cap (-1);
  g.n_instrs <- live;
  g.free_instr <- -1;
  g.n_free_instrs <- 0;
  g.i_stamp <- Array.make cap 0;
  g.u_stamp <- Array.make cap 0;
  (* Rebuild the intra-block chains with the new ids. *)
  List.iter
    (fun (bid, ps, bs) ->
      g.phi_head.(bid) <- -1;
      g.phi_tail.(bid) <- -1;
      g.body_head.(bid) <- -1;
      g.body_tail.(bid) <- -1;
      g.blk_size.(bid) <- 0;
      List.iter (fun id -> chain_append g bid map.(id) ~phi:true) ps;
      List.iter (fun id -> chain_append g bid map.(id) ~phi:false) bs)
    old_order;
  (* Remap terminator operands and rebuild use chains from scratch. *)
  iter_blocks g (fun bid ->
      g.blk_term.(bid) <-
        (match g.blk_term.(bid) with
        | Return (Some v) -> Return (Some (remap v))
        | Branch br -> Branch { br with cond = remap br.cond }
        | t -> t));
  g.n_cells <- 0;
  g.free_cell <- -1;
  for id = 0 to g.n_instrs - 1 do
    iter_inputs (fun v -> add_use_enc g v (enc_instr id)) g.kinds.(id)
  done;
  iter_blocks g (fun bid ->
      iter_term_inputs
        (fun v -> add_use_enc g v (enc_term bid))
        g.blk_term.(bid));
  (* Ids changed: every cached analysis and external table is stale. *)
  touch g;
  g.cache <- No_cache;
  map

(* ------------------------------------------------------------------ *)
(* Orders                                                              *)
(* ------------------------------------------------------------------ *)

let rpo g =
  let visited = Bytes.make (max 1 g.n_blocks) '\000' in
  let order = ref [] in
  let rec dfs bid =
    if Bytes.unsafe_get visited bid = '\000' then begin
      Bytes.unsafe_set visited bid '\001';
      (match g.blk_term.(bid) with
      | Jump b -> dfs b
      | Branch { if_true; if_false; _ } ->
          dfs if_true;
          if if_false <> if_true then dfs if_false
      | Return _ | Unreachable -> ());
      order := bid :: !order
    end
  in
  if g.entry >= 0 then dfs g.entry;
  !order

let reachable g =
  let set = Array.make (max 1 g.n_blocks) false in
  List.iter (fun b -> set.(b) <- true) (rpo g);
  set

let remove_unreachable_blocks g =
  let reach = reachable g in
  let dead_blocks =
    fold_blocks g (fun acc b -> if reach.(b) then acc else b :: acc) []
  in
  if dead_blocks = [] then false
  else begin
    (* Drop all edges out of dead blocks (this also removes phi inputs
       that reachable merge blocks held for them). *)
    List.iter (fun bid -> set_term g bid Unreachable) dead_blocks;
    (* Clear def-use edges among dead instructions, then delete them. *)
    List.iter
      (fun bid ->
        List.iter (fun id -> set_kind g id (Const 0)) (block_instrs g bid))
      dead_blocks;
    List.iter
      (fun bid ->
        save_block g bid;
        touch g;
        let members = block_instrs g bid in
        List.iter (fun id -> kill_slot g id) members;
        kill_block_slot g bid)
      dead_blocks;
    true
  end

(* ------------------------------------------------------------------ *)
(* Deep copy                                                           *)
(* ------------------------------------------------------------------ *)

let copy g =
  {
    g with
    kinds = Array.copy g.kinds;
    ins_block = Array.copy g.ins_block;
    seq_prev = Array.copy g.seq_prev;
    seq_next = Array.copy g.seq_next;
    use_head = Array.copy g.use_head;
    cell_user = Array.copy g.cell_user;
    cell_next = Array.copy g.cell_next;
    blk_live = Array.copy g.blk_live;
    blk_term = Array.copy g.blk_term;
    blk_preds = Array.copy g.blk_preds;
    phi_head = Array.copy g.phi_head;
    phi_tail = Array.copy g.phi_tail;
    body_head = Array.copy g.body_head;
    body_tail = Array.copy g.body_tail;
    blk_size = Array.copy g.blk_size;
    generation = 0;
    cache = No_cache;
    (* The copy gets fresh (empty) journal pools. *)
    journaling = false;
    epoch = 0;
    i_stamp = Array.make (Array.length g.kinds) 0;
    b_stamp = Array.make (Array.length g.blk_term) 0;
    u_stamp = Array.make (Array.length g.kinds) 0;
    ji_ids = Array.make 32 0;
    ji_kind = Array.make 32 Null;
    ji_block = Array.make 32 0;
    ji_n = 0;
    jb_ids = Array.make 16 0;
    jb_term = Array.make 16 Unreachable;
    jb_preds = Array.make 16 no_preds;
    jb_phi_off = Array.make 16 0;
    jb_phi_len = Array.make 16 0;
    jb_body_off = Array.make 16 0;
    jb_body_len = Array.make 16 0;
    jb_n = 0;
    ju_ids = Array.make 32 0;
    ju_off = Array.make 32 0;
    ju_len = Array.make 32 0;
    ju_n = 0;
    jbuf = Array.make 64 0;
    jbuf_n = 0;
  }

let restore g ~backup =
  if g.journaling then
    invalid_arg "Graph.restore: speculation active (use rollback)";
  g.kinds <- Array.copy backup.kinds;
  g.ins_block <- Array.copy backup.ins_block;
  g.seq_prev <- Array.copy backup.seq_prev;
  g.seq_next <- Array.copy backup.seq_next;
  g.use_head <- Array.copy backup.use_head;
  g.n_instrs <- backup.n_instrs;
  g.free_instr <- backup.free_instr;
  g.n_free_instrs <- backup.n_free_instrs;
  g.cell_user <- Array.copy backup.cell_user;
  g.cell_next <- Array.copy backup.cell_next;
  g.n_cells <- backup.n_cells;
  g.free_cell <- backup.free_cell;
  g.blk_live <- Array.copy backup.blk_live;
  g.blk_term <- Array.copy backup.blk_term;
  g.blk_preds <- Array.copy backup.blk_preds;
  g.phi_head <- Array.copy backup.phi_head;
  g.phi_tail <- Array.copy backup.phi_tail;
  g.body_head <- Array.copy backup.body_head;
  g.body_tail <- Array.copy backup.body_tail;
  g.blk_size <- Array.copy backup.blk_size;
  g.n_blocks <- backup.n_blocks;
  g.free_block <- backup.free_block;
  g.entry <- backup.entry;
  g.n_live <- backup.n_live;
  g.n_live_blocks <- backup.n_live_blocks;
  (* Keep stamp arrays sized to the (possibly larger) restored arena. *)
  if Array.length g.i_stamp < Array.length g.kinds then begin
    g.i_stamp <- Array.make (Array.length g.kinds) 0;
    g.u_stamp <- Array.make (Array.length g.kinds) 0
  end;
  if Array.length g.b_stamp < Array.length g.blk_term then
    g.b_stamp <- Array.make (Array.length g.blk_term) 0;
  (* The overwrite is an arbitrary state change: advance the generation
     (never rewind — cached analyses key on it) and drop the cache. *)
  touch g;
  g.cache <- No_cache
