(** Core type definitions for the SSA intermediate representation.

    The IR is a classic block-scheduled SSA form: a function is a graph of
    basic blocks; each block holds a list of phi instructions, a list of
    ordinary instructions, and one terminator.  Values are identified with
    the instruction that produces them.

    Arithmetic semantics (shared exactly with the interpreter and the
    canonicalizer, see DESIGN.md §5): native OCaml ints; [Div]/[Rem] are
    floor division and modulo with division by zero yielding 0; shift
    amounts are taken modulo 64 (an amount of 63 yields 0 for [Shl] and
    the sign for [Shr]). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type instr_id = int
type block_id = int

(** A value is the id of the instruction producing it. *)
type value = instr_id

(** Placeholder for a phi input that has not been filled in yet; the
    verifier rejects graphs that still contain it. *)
let invalid_value : value = -1

type instr_kind =
  | Const of int  (** integer (and boolean 0/1) constant *)
  | Null  (** the null reference *)
  | Param of int  (** i-th function parameter *)
  | Binop of binop * value * value
  | Cmp of cmpop * value * value
  | Neg of value  (** arithmetic negation *)
  | Not of value  (** boolean negation of a 0/1 value *)
  | Phi of value array  (** inputs aligned with the block's predecessor list *)
  | New of string * value array
      (** allocation of class instance; arguments initialize the fields in
          declaration order *)
  | Load of value * string  (** field read: [obj.field] *)
  | Store of value * string * value  (** field write: [obj.field <- v] *)
  | Load_global of string
  | Store_global of string * value
  | Call of string * value array  (** call to a named function *)

type terminator =
  | Jump of block_id
  | Branch of {
      cond : value;
      if_true : block_id;
      if_false : block_id;
      prob : float;  (** profile probability of taking the true branch *)
    }
  | Return of value option
  | Unreachable

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let cmpop_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

(** [eval_binop op a b] evaluates a binary operation with the semantics
    documented above.  This single definition is used by both the
    canonicalizer (constant folding) and the interpreter, which makes
    differential testing of optimizations sound by construction. *)
let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div ->
      if b = 0 then 0
      else
        let q = a / b and r = a mod b in
        if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q
  | Rem ->
      if b = 0 then 0
      else
        let r = a mod b in
        if r <> 0 && (r < 0) <> (b < 0) then r + b else r
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl ->
      let s = b land 63 in
      if s >= 63 then 0 else a lsl s
  | Shr ->
      let s = b land 63 in
      a asr (min s 62)

(** [eval_cmp op a b] evaluates an integer comparison to 0 or 1. *)
let eval_cmp op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

(** Swapped comparison: [cmp a b = swap_cmp cmp b a]. *)
let swap_cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

(** Negated comparison: [cmp a b = 1 - negate_cmp cmp a b]. *)
let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(** Inputs read by an instruction, in order. *)
let inputs_of_kind = function
  | Const _ | Null | Param _ | Load_global _ -> []
  | Binop (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Neg a | Not a | Load (a, _) | Store_global (_, a) -> [ a ]
  | Store (a, _, b) -> [ a; b ]
  | Phi vs | New (_, vs) | Call (_, vs) -> Array.to_list vs

(** Apply [f] to every input of a kind, in order, without building a
    list — the hot-path counterpart of {!inputs_of_kind}. *)
let iter_inputs f = function
  | Const _ | Null | Param _ | Load_global _ -> ()
  | Binop (_, a, b) | Cmp (_, a, b) | Store (a, _, b) ->
      f a;
      f b
  | Neg a | Not a | Load (a, _) | Store_global (_, a) -> f a
  | Phi vs | New (_, vs) | Call (_, vs) -> Array.iter f vs

(** Rewrite every input of a kind through [f]. *)
let map_inputs f = function
  | (Const _ | Null | Param _ | Load_global _) as k -> k
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | Neg a -> Neg (f a)
  | Not a -> Not (f a)
  | Load (a, fld) -> Load (f a, fld)
  | Store (a, fld, b) -> Store (f a, fld, f b)
  | Store_global (g, a) -> Store_global (g, f a)
  | Phi vs -> Phi (Array.map f vs)
  | New (c, vs) -> New (c, Array.map f vs)
  | Call (c, vs) -> Call (c, Array.map f vs)

(** An instruction is pure if it has no side effect, does not observe
    mutable state, and can be removed when unused.  [Div]/[Rem] are pure
    because division by zero is defined (it yields 0, it does not trap). *)
let is_pure = function
  | Const _ | Null | Param _ | Binop _ | Cmp _ | Neg _ | Not _ | Phi _ -> true
  | New _ | Load _ | Store _ | Load_global _ | Store_global _ | Call _ -> false

(** Instructions with a visible side effect (cannot be re-ordered or
    removed without an analysis proving them dead). *)
let has_side_effect = function
  | Store _ | Store_global _ | Call _ | New _ -> true
  | Const _ | Null | Param _ | Binop _ | Cmp _ | Neg _ | Not _ | Phi _
  | Load _ | Load_global _ ->
      false
