(** SSA reconstruction after code duplication.

    When the duplication transform copies a merge block into a
    predecessor, every value originally defined in the merge gains a
    second definition (its copy).  Uses of the original value in blocks
    the merge no longer dominates must be rewritten to see the correct
    reaching definition, inserting phis where control flow re-joins.
    Implemented as on-demand value lookup (in the style of LLVM's
    SSAUpdater / Braun et al.'s SSA construction): phis are created lazily
    at join points while walking predecessors, then trivial phis are
    cleaned up.

    This is exactly the "complex analysis to generate valid φ instructions
    for usages in dominated blocks" that the paper's Section 3.1 cites as
    the expensive part of the real transformation (and the reason the
    simulation tier avoids it). *)

open Types

(** Reaching-definition state for one repaired variable, exposed so other
    passes (scalar replacement) can reuse the lookup machinery for their
    own "memory variable" promotion. *)
type var_state = {
  defs : (block_id, value) Hashtbl.t;  (** reaching def at end of block *)
  live_in : (block_id, value) Hashtbl.t;  (** memoized value live into block *)
  mutable inserted : value list;  (** phis created during repair *)
}

(** Raised when a lookup walks off the entry without meeting a
    definition (a caller bug: every path to a use must pass a def). *)
exception No_reaching_def of block_id

(** Value of the variable at the end of a block (its own def, or the
    value live into it). *)
val value_at_end : Graph.t -> var_state -> block_id -> value

(** Value of the variable on entry to a block; inserts phis at joins on
    demand (memoized, loop-safe). *)
val value_live_into : Graph.t -> var_state -> block_id -> value

(** [repair g ~classes] fixes uses after duplication.  Each class is
    [(original, copies)]: the original value together with its alternate
    definitions, given as [(block, value)] pairs — the value that acts as
    the reaching definition at the end of [block].  Uses of [original]
    that are no longer dominated by its definition are rewritten; phis are
    inserted at join points as needed.  Returns the inserted phis that
    survive trivial-phi cleanup. *)
val repair : Graph.t -> classes:(value * (block_id * value) list) list -> value list
