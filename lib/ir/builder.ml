(** Convenience layer for constructing graphs directly (tests, examples,
    and the paper's figure programs).  Keeps a current insertion block and
    offers one function per instruction kind. *)

open Types

type t = { graph : Graph.t; mutable cur : block_id }

let create ?(name = "fn") ~n_params () =
  let graph = Graph.create ~name ~n_params () in
  let entry = Graph.add_block graph in
  { graph; cur = entry }

let graph b = b.graph
let current b = b.cur
let entry b = Graph.entry b.graph

(** Create a fresh (empty, unconnected) block. *)
let new_block b = Graph.add_block b.graph

(** Move the insertion point. *)
let switch b bid = b.cur <- bid

let add b kind = Graph.append b.graph b.cur kind
let const b n = add b (Const n)
let null b = add b Null
let param b i = add b (Param i)
let binop b op x y = add b (Binop (op, x, y))
let cmp b op x y = add b (Cmp (op, x, y))
let neg b x = add b (Neg x)
let not_ b x = add b (Not x)
let new_ b cls args = add b (New (cls, Array.of_list args))
let load b o f = add b (Load (o, f))
let store b o f v = add b (Store (o, f, v))
let gload b gl = add b (Load_global gl)
let gstore b gl v = add b (Store_global (gl, v))
let call b fn args = add b (Call (fn, Array.of_list args))

(** Add a phi to a block.  The block must already have all its
    predecessors; inputs align with the predecessor order. *)
let phi b bid inputs =
  let n = List.length (Graph.preds b.graph bid) in
  if List.length inputs <> n then
    invalid_arg
      (Printf.sprintf "Builder.phi: %d inputs for %d predecessors"
         (List.length inputs) n);
  Graph.append b.graph bid (Phi (Array.of_list inputs))

let jump b target = Graph.set_term b.graph b.cur (Jump target)

let branch ?(prob = 0.5) b cond ~if_true ~if_false =
  Graph.set_term b.graph b.cur (Branch { cond; if_true; if_false; prob })

let ret b v = Graph.set_term b.graph b.cur (Return (Some v))
let ret_void b = Graph.set_term b.graph b.cur (Return None)

(** Finish: verify and return the graph. *)
let finish b =
  Verifier.verify b.graph;
  b.graph
