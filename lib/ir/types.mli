(** Core type definitions for the SSA intermediate representation.

    The IR is a classic block-scheduled SSA form: a function is a graph of
    basic blocks; each block holds a list of phi instructions, a list of
    ordinary instructions, and one terminator.  Values are identified with
    the instruction that produces them.

    Arithmetic semantics (shared exactly with the interpreter and the
    canonicalizer, see DESIGN.md §5): native OCaml ints; [Div]/[Rem] are
    floor division and modulo with division by zero yielding 0; shift
    amounts are taken modulo 64 (an amount of 63 yields 0 for [Shl] and
    the sign for [Shr]). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type instr_id = int
type block_id = int

(** A value is the id of the instruction producing it. *)
type value = instr_id

(** Placeholder for a phi input that has not been filled in yet; the
    verifier rejects graphs that still contain it. *)
val invalid_value : value

type instr_kind =
  | Const of int  (** integer (and boolean 0/1) constant *)
  | Null  (** the null reference *)
  | Param of int  (** i-th function parameter *)
  | Binop of binop * value * value
  | Cmp of cmpop * value * value
  | Neg of value  (** arithmetic negation *)
  | Not of value  (** boolean negation of a 0/1 value *)
  | Phi of value array  (** inputs aligned with the block's predecessor list *)
  | New of string * value array
      (** allocation of class instance; arguments initialize the fields in
          declaration order *)
  | Load of value * string  (** field read: [obj.field] *)
  | Store of value * string * value  (** field write: [obj.field <- v] *)
  | Load_global of string
  | Store_global of string * value
  | Call of string * value array  (** call to a named function *)

type terminator =
  | Jump of block_id
  | Branch of {
      cond : value;
      if_true : block_id;
      if_false : block_id;
      prob : float;  (** profile probability of taking the true branch *)
    }
  | Return of value option
  | Unreachable

val binop_to_string : binop -> string
val cmpop_to_string : cmpop -> string

(** [eval_binop op a b] evaluates a binary operation with the semantics
    documented above.  This single definition is used by both the
    canonicalizer (constant folding) and the interpreter, which makes
    differential testing of optimizations sound by construction. *)
val eval_binop : binop -> int -> int -> int

(** [eval_cmp op a b] evaluates an integer comparison to 0 or 1. *)
val eval_cmp : cmpop -> int -> int -> int

(** Swapped comparison: [cmp a b = swap_cmp cmp b a]. *)
val swap_cmp : cmpop -> cmpop

(** Negated comparison: [cmp a b = 1 - negate_cmp cmp a b]. *)
val negate_cmp : cmpop -> cmpop

(** Inputs read by an instruction, in order. *)
val inputs_of_kind : instr_kind -> value list

(** Apply a function to every input of a kind, in order, without building
    a list — the hot-path counterpart of {!inputs_of_kind}. *)
val iter_inputs : (value -> unit) -> instr_kind -> unit

(** Rewrite every input of a kind through the function. *)
val map_inputs : (value -> value) -> instr_kind -> instr_kind

(** An instruction is pure if it has no side effect, does not observe
    mutable state, and can be removed when unused.  [Div]/[Rem] are pure
    because division by zero is defined (it yields 0, it does not trap). *)
val is_pure : instr_kind -> bool

(** Instructions with a visible side effect (cannot be re-ordered or
    removed without an analysis proving them dead). *)
val has_side_effect : instr_kind -> bool
