(** Static block execution-frequency estimation.

    The entry block has frequency 1.  Frequencies propagate along forward
    edges in reverse postorder, split by branch probabilities; each loop
    level multiplies its header's incoming frequency by [loop_factor]
    (approximating an average trip count, as JIT profiles would).  DBDS
    consumes the frequency of a block {e relative to the maximum frequency
    in the compilation unit} (paper §5.3–5.4). *)

type t

val default_loop_factor : float

(** Probability of the [p -> s] edge being taken when control leaves
    [p]. *)
val edge_prob : Graph.t -> Types.block_id -> Types.block_id -> float

val compute : ?loop_factor:float -> Dom.t -> Loops.t -> t

(** Absolute estimated frequency (entry = 1.0). *)
val frequency : t -> Types.block_id -> float

(** Frequency relative to the hottest block of the unit, in [0, 1]. *)
val relative : t -> Types.block_id -> float

(** Equality of two frequency estimates over the same graph, within a
    small relative tolerance. *)
val equal : t -> t -> bool
