(** Textual dump of IR graphs, for the CLI driver, tests and debugging. *)

open Types

let pp_value ppf v =
  if v = invalid_value then Fmt.string ppf "<invalid>" else Fmt.pf ppf "v%d" v

let pp_values ppf vs =
  Fmt.(array ~sep:(any ", ") pp_value) ppf vs

let pp_kind ppf = function
  | Const n -> Fmt.pf ppf "const %d" n
  | Null -> Fmt.string ppf "null"
  | Param i -> Fmt.pf ppf "param %d" i
  | Binop (op, a, b) ->
      Fmt.pf ppf "%s %a, %a" (binop_to_string op) pp_value a pp_value b
  | Cmp (op, a, b) ->
      Fmt.pf ppf "cmp.%s %a, %a" (cmpop_to_string op) pp_value a pp_value b
  | Neg a -> Fmt.pf ppf "neg %a" pp_value a
  | Not a -> Fmt.pf ppf "not %a" pp_value a
  | Phi inputs -> Fmt.pf ppf "phi [%a]" pp_values inputs
  | New (cls, args) -> Fmt.pf ppf "new %s(%a)" cls pp_values args
  | Load (o, f) -> Fmt.pf ppf "load %a.%s" pp_value o f
  | Store (o, f, v) -> Fmt.pf ppf "store %a.%s <- %a" pp_value o f pp_value v
  | Load_global gl -> Fmt.pf ppf "gload %s" gl
  | Store_global (gl, v) -> Fmt.pf ppf "gstore %s <- %a" gl pp_value v
  | Call (fn, args) -> Fmt.pf ppf "call %s(%a)" fn pp_values args

let pp_term ppf = function
  | Jump b -> Fmt.pf ppf "jump b%d" b
  | Branch { cond; if_true; if_false; prob } ->
      Fmt.pf ppf "branch %a ? b%d : b%d  @%.2f" pp_value cond if_true if_false
        prob
  | Return None -> Fmt.string ppf "return"
  | Return (Some v) -> Fmt.pf ppf "return %a" pp_value v
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_block g ppf bid =
  Fmt.pf ppf "b%d:" bid;
  (match Graph.preds g bid with
  | [] -> ()
  | preds ->
      Fmt.pf ppf "  ; preds: %a"
        Fmt.(list ~sep:(any ", ") (fmt "b%d"))
        preds);
  Fmt.pf ppf "@\n";
  Graph.iter_block_instrs g bid (fun id ->
      Fmt.pf ppf "  v%d = %a@\n" id pp_kind (Graph.kind g id));
  Fmt.pf ppf "  %a@\n" pp_term (Graph.term g bid)

let pp_graph ppf g =
  Fmt.pf ppf "fn %s(%d params) entry=b%d@\n" (Graph.name g) (Graph.n_params g)
    (Graph.entry g);
  (* Print reachable blocks in reverse postorder, then any detached ones. *)
  let printed = Hashtbl.create 16 in
  List.iter
    (fun bid ->
      Hashtbl.add printed bid ();
      pp_block g ppf bid)
    (Graph.rpo g);
  Graph.iter_blocks g (fun bid ->
      if not (Hashtbl.mem printed bid) then begin
        Fmt.pf ppf "; unreachable:@\n";
        pp_block g ppf bid
      end)

let graph_to_string g = Fmt.str "%a" pp_graph g
