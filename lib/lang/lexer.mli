(** Hand-written lexer with line/column tracking. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_CLASS
  | KW_GLOBAL
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_NEW
  | KW_NULL
  | KW_TRUE
  | KW_FALSE
  | KW_INT
  | KW_BOOL
  | KW_VOID
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOT
  | AT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | CARET
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | BANG
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

val keyword_of_string : string -> token option
val token_to_string : token -> string

(** Tokenize a whole source string (ending with [EOF]).  ["// ..."] and
    ["/* ... */"] comments are skipped.
    @raise Lex_error with a position on invalid input. *)
val tokenize : string -> located list
