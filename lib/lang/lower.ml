(** AST → SSA lowering, using the on-the-fly SSA construction of
    Braun et al. ("Simple and Efficient Construction of Static Single
    Assignment Form", CC 2013): local variables are written and read
    per-block; reads in unsealed blocks create operandless phis that are
    completed when the block's predecessors are final; trivial phis are
    removed recursively.

    Short-circuit [&&]/[||] lower to control flow and therefore introduce
    merges with phis — prime duplication candidates, mirroring how Java
    bytecode produces them. *)

open Ast
module G = Ir.Graph
module T = Ir.Types

exception Lower_error of string

let err fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

type ctx = {
  g : G.t;
  prog : Ast.program;
  locals : (string, int) Hashtbl.t;
      (** function-local names, interned to dense indices *)
  local_names : string array;  (** index -> name (for diagnostics) *)
  n_locals : int;
  current_defs : (int, T.value) Hashtbl.t;
      (** keyed [block * n_locals + local]: int keys hash cheaply and
          need no tuple allocation per variable read/write *)
  sealed : (T.block_id, unit) Hashtbl.t;
  incomplete : (T.block_id, (int * T.value) list ref) Hashtbl.t;
  resolved : (T.value, T.value) Hashtbl.t;
      (** forwarding for removed trivial phis *)
  mutable cur : T.block_id;
  mutable terminated : bool;
      (** the current linear flow ended in a return; skip dead code *)
}

let rec resolve ctx v =
  match Hashtbl.find_opt ctx.resolved v with
  | Some v' ->
      let final = resolve ctx v' in
      if final <> v' then Hashtbl.replace ctx.resolved v final;
      final
  | None -> v

let defs_key ctx block local = (block * ctx.n_locals) + local

let write_var ctx block local value =
  Hashtbl.replace ctx.current_defs (defs_key ctx block local) value

let rec read_var ctx block local =
  match Hashtbl.find_opt ctx.current_defs (defs_key ctx block local) with
  | Some v -> resolve ctx v
  | None -> read_var_recursive ctx block local

and read_var_recursive ctx block local =
  let value =
    if not (Hashtbl.mem ctx.sealed block) then begin
      (* Incomplete CFG: create an operandless phi and complete it when
         the block is sealed. *)
      let phi = G.append ctx.g block (T.Phi [||]) in
      let pending =
        match Hashtbl.find_opt ctx.incomplete block with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace ctx.incomplete block l;
            l
      in
      pending := (local, phi) :: !pending;
      phi
    end
    else
      match G.preds ctx.g block with
      | [] ->
          err "variable '%s' read before assignment" ctx.local_names.(local)
      | [ p ] -> read_var ctx p local
      | _ ->
          (* Break potential cycles with an operandless phi first. *)
          let phi = G.append ctx.g block (T.Phi [||]) in
          write_var ctx block local phi;
          add_phi_operands ctx block local phi
  in
  write_var ctx block local value;
  value

and add_phi_operands ctx block local phi =
  let inputs =
    List.map (fun p -> read_var ctx p local) (G.preds ctx.g block)
  in
  G.set_kind ctx.g phi (T.Phi (Array.of_list inputs));
  try_remove_trivial ctx phi

and try_remove_trivial ctx phi =
  match G.kind ctx.g phi with
  | T.Phi inputs ->
      let distinct =
        Array.to_list inputs
        |> List.map (resolve ctx)
        |> List.filter (fun v -> v <> phi)
        |> List.sort_uniq compare
      in
      (match distinct with
      | [ same ] ->
          (* Collect phi users before rewriting; they may become trivial. *)
          let phi_users =
            List.filter_map
              (function
                | G.U_instr u when u <> phi && G.instr_exists ctx.g u -> (
                    match G.kind ctx.g u with T.Phi _ -> Some u | _ -> None)
                | _ -> None)
              (G.uses ctx.g phi)
          in
          G.replace_uses ctx.g phi ~by:same;
          Hashtbl.replace ctx.resolved phi same;
          G.remove_instr ctx.g phi;
          List.iter
            (fun u ->
              if G.instr_exists ctx.g u then ignore (try_remove_trivial ctx u))
            phi_users;
          resolve ctx same
      | _ -> phi)
  | _ -> phi

let seal_block ctx block =
  (match Hashtbl.find_opt ctx.incomplete block with
  | Some pending ->
      List.iter
        (fun (local, phi) ->
          if G.instr_exists ctx.g phi then
            ignore (add_phi_operands ctx block local phi))
        !pending;
      Hashtbl.remove ctx.incomplete block
  | None -> ());
  Hashtbl.replace ctx.sealed block ()

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)
(* ------------------------------------------------------------------ *)

let append ctx kind = G.append ctx.g ctx.cur kind

let is_global ctx name =
  List.exists (fun gd -> gd.gd_name = name) ctx.prog.Ast.globals

let ir_binop : Ast.binop -> T.binop option = function
  | Add -> Some T.Add
  | Sub -> Some T.Sub
  | Mul -> Some T.Mul
  | Div -> Some T.Div
  | Rem -> Some T.Rem
  | BitAnd -> Some T.And
  | BitOr -> Some T.Or
  | BitXor -> Some T.Xor
  | Shl -> Some T.Shl
  | Shr -> Some T.Shr
  | _ -> None

let ir_cmpop : Ast.binop -> T.cmpop option = function
  | Eq -> Some T.Eq
  | Ne -> Some T.Ne
  | Lt -> Some T.Lt
  | Le -> Some T.Le
  | Gt -> Some T.Gt
  | Ge -> Some T.Ge
  | _ -> None

let rec lower_expr ctx = function
  | EInt n -> append ctx (T.Const n)
  | EBool b -> append ctx (T.Const (if b then 1 else 0))
  | ENull -> append ctx T.Null
  | EVar name -> (
      match Hashtbl.find_opt ctx.locals name with
      | Some local -> read_var ctx ctx.cur local
      | None ->
          if is_global ctx name then append ctx (T.Load_global name)
          else err "unknown variable '%s'" name)
  | EUnop (Neg, e) ->
      let v = lower_expr ctx e in
      append ctx (T.Neg v)
  | EUnop (Not, e) ->
      let v = lower_expr ctx e in
      append ctx (T.Not v)
  | EBinop (AndAlso, a, b) -> lower_short_circuit ctx ~is_and:true a b
  | EBinop (OrElse, a, b) -> lower_short_circuit ctx ~is_and:false a b
  | EBinop (op, a, b) -> (
      let va = lower_expr ctx a in
      let vb = lower_expr ctx b in
      match (ir_binop op, ir_cmpop op) with
      | Some bop, _ -> append ctx (T.Binop (bop, va, vb))
      | _, Some cop -> append ctx (T.Cmp (cop, va, vb))
      | None, None -> assert false)
  | EField (e, field) ->
      let v = lower_expr ctx e in
      append ctx (T.Load (v, field))
  | ENew (cls, args) ->
      let vargs = List.map (lower_expr ctx) args in
      append ctx (T.New (cls, Array.of_list vargs))
  | ECall (name, args) ->
      let vargs = List.map (lower_expr ctx) args in
      append ctx (T.Call (name, Array.of_list vargs))

and lower_short_circuit ctx ~is_and a b =
  (* a && b:  branch a ? eval_b : short;  merge with phi [vb, false]
     a || b:  branch a ? short : eval_b;  merge with phi [vb, true] *)
  let va = lower_expr ctx a in
  let eval_b = G.add_block ctx.g in
  let short = G.add_block ctx.g in
  let merge = G.add_block ctx.g in
  (if is_and then
     G.set_term ctx.g ctx.cur
       (T.Branch { cond = va; if_true = eval_b; if_false = short; prob = 0.5 })
   else
     G.set_term ctx.g ctx.cur
       (T.Branch { cond = va; if_true = short; if_false = eval_b; prob = 0.5 }));
  seal_block ctx eval_b;
  seal_block ctx short;
  ctx.cur <- eval_b;
  let vb = lower_expr ctx b in
  let b_end = ctx.cur in
  G.set_term ctx.g b_end (T.Jump merge);
  let short_const =
    G.append ctx.g short (T.Const (if is_and then 0 else 1))
  in
  G.set_term ctx.g short (T.Jump merge);
  seal_block ctx merge;
  ctx.cur <- merge;
  (* Predecessor order of [merge] is [b_end; short] (edges added in that
     order by the set_term calls above). *)
  let inputs =
    List.map
      (fun p ->
        if p = b_end then vb
        else if p = short then short_const
        else assert false)
      (G.preds ctx.g merge)
  in
  G.append ctx.g merge (T.Phi (Array.of_list inputs))

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)
(* ------------------------------------------------------------------ *)

let default_value ctx = function
  | TClass _ -> append ctx T.Null
  | TInt | TBool | TVoid -> append ctx (T.Const 0)

let rec lower_stmt ctx ~ret_type stmt =
  if ctx.terminated then () (* dead code after return: skip *)
  else
    match stmt with
    | SDecl (ty, name, init) ->
        let v =
          match init with
          | Some e -> lower_expr ctx e
          | None -> default_value ctx ty
        in
        write_var ctx ctx.cur (Hashtbl.find ctx.locals name) v
    | SAssign (LVar name, e) -> (
        let v = lower_expr ctx e in
        match Hashtbl.find_opt ctx.locals name with
        | Some local -> write_var ctx ctx.cur local v
        | None ->
            if is_global ctx name then
              ignore (append ctx (T.Store_global (name, v)))
            else err "unknown variable '%s'" name)
    | SAssign (LField (obj, field), e) ->
        let vo = lower_expr ctx obj in
        let v = lower_expr ctx e in
        ignore (append ctx (T.Store (vo, field, v)))
    | SExpr e -> ignore (lower_expr ctx e)
    | SBlock stmts -> List.iter (lower_stmt ctx ~ret_type) stmts
    | SReturn None ->
        G.set_term ctx.g ctx.cur (T.Return None);
        ctx.terminated <- true
    | SReturn (Some e) ->
        let v = lower_expr ctx e in
        G.set_term ctx.g ctx.cur (T.Return (Some v));
        ctx.terminated <- true
    | SIf { cond; prob; then_; else_ } -> (
        let vc = lower_expr ctx cond in
        let bt = G.add_block ctx.g in
        let bf = G.add_block ctx.g in
        let prob = Option.value ~default:0.5 prob in
        G.set_term ctx.g ctx.cur
          (T.Branch { cond = vc; if_true = bt; if_false = bf; prob });
        seal_block ctx bt;
        seal_block ctx bf;
        ctx.cur <- bt;
        ctx.terminated <- false;
        List.iter (lower_stmt ctx ~ret_type) then_;
        let t_end = ctx.cur and t_term = ctx.terminated in
        ctx.cur <- bf;
        ctx.terminated <- false;
        List.iter (lower_stmt ctx ~ret_type) else_;
        let f_end = ctx.cur and f_term = ctx.terminated in
        match (t_term, f_term) with
        | true, true -> ctx.terminated <- true
        | true, false ->
            ctx.cur <- f_end;
            ctx.terminated <- false
        | false, true ->
            ctx.cur <- t_end;
            ctx.terminated <- false
        | false, false ->
            let merge = G.add_block ctx.g in
            G.set_term ctx.g t_end (T.Jump merge);
            G.set_term ctx.g f_end (T.Jump merge);
            seal_block ctx merge;
            ctx.cur <- merge;
            ctx.terminated <- false)
    | SWhile { cond; prob; body } ->
        let header = G.add_block ctx.g in
        G.set_term ctx.g ctx.cur (T.Jump header);
        (* header is not sealed yet: the back edge is still missing. *)
        ctx.cur <- header;
        let vc = lower_expr ctx cond in
        let cond_end = ctx.cur in
        let body_b = G.add_block ctx.g in
        let exit_b = G.add_block ctx.g in
        let prob = Option.value ~default:0.9 prob in
        G.set_term ctx.g cond_end
          (T.Branch { cond = vc; if_true = body_b; if_false = exit_b; prob });
        seal_block ctx body_b;
        ctx.cur <- body_b;
        ctx.terminated <- false;
        List.iter (lower_stmt ctx ~ret_type) body;
        if not ctx.terminated then G.set_term ctx.g ctx.cur (T.Jump header);
        seal_block ctx header;
        (* Blocks between header and cond_end created by &&/|| in the
           condition were sealed when created. *)
        seal_block ctx exit_b;
        ctx.cur <- exit_b;
        ctx.terminated <- false

(* ------------------------------------------------------------------ *)
(* Function / program lowering                                         *)
(* ------------------------------------------------------------------ *)

let collect_locals f =
  let tbl = Hashtbl.create 16 in
  let names = ref [] in
  let add name =
    if not (Hashtbl.mem tbl name) then begin
      Hashtbl.add tbl name (Hashtbl.length tbl);
      names := name :: !names
    end
  in
  List.iter (fun (_, name) -> add name) f.fn_params;
  let rec scan_stmt = function
    | SDecl (_, name, _) -> add name
    | SIf { then_; else_; _ } ->
        List.iter scan_stmt then_;
        List.iter scan_stmt else_
    | SWhile { body; _ } -> List.iter scan_stmt body
    | SBlock stmts -> List.iter scan_stmt stmts
    | SAssign _ | SReturn _ | SExpr _ -> ()
  in
  List.iter scan_stmt f.fn_body;
  (tbl, Array.of_list (List.rev !names))

let lower_function prog f =
  let g = G.create ~name:f.fn_name ~n_params:(List.length f.fn_params) () in
  let entry = G.add_block g in
  G.set_entry g entry;
  let locals, local_names = collect_locals f in
  let ctx =
    {
      g;
      prog;
      locals;
      local_names;
      n_locals = max 1 (Array.length local_names);
      current_defs = Hashtbl.create 64;
      sealed = Hashtbl.create 16;
      incomplete = Hashtbl.create 8;
      resolved = Hashtbl.create 16;
      cur = entry;
      terminated = false;
    }
  in
  seal_block ctx entry;
  List.iteri
    (fun i (_, name) ->
      let p = G.append g entry (T.Param i) in
      write_var ctx entry (Hashtbl.find ctx.locals name) p)
    f.fn_params;
  List.iter (lower_stmt ctx ~ret_type:f.fn_ret) f.fn_body;
  (* Falling off the end: return the type's default. *)
  if not ctx.terminated then begin
    match f.fn_ret with
    | TVoid -> G.set_term ctx.g ctx.cur (T.Return None)
    | TClass _ ->
        let v = append ctx T.Null in
        G.set_term ctx.g ctx.cur (T.Return (Some v))
    | TInt | TBool ->
        let v = append ctx (T.Const 0) in
        G.set_term ctx.g ctx.cur (T.Return (Some v))
  end;
  g

(** Lower a type-checked program to an IR program. *)
let lower_program (p : Ast.program) =
  let main =
    match p.functions with
    | [] -> "main"
    | f :: _ ->
        if List.exists (fun f -> f.fn_name = "main") p.functions then "main"
        else f.fn_name
  in
  let prog = Ir.Program.create ~main () in
  List.iter
    (fun cd ->
      Ir.Program.add_class prog
        {
          Ir.Program.cls_name = cd.cd_name;
          fields = List.map snd cd.cd_fields;
        })
    p.classes;
  let prog =
    { prog with Ir.Program.globals = List.map (fun gd -> gd.gd_name) p.globals }
  in
  List.iter (fun f -> Ir.Program.add_function prog (lower_function p f)) p.functions;
  prog
