(** Recursive-descent parser.  Precedence, lowest to highest:
    [||] < [&&] < [|] < [^] < [&] < [== !=] < [< <= > >=] < [<< >>]
    < [+ -] < [* / %] < unary < postfix field access. *)

open Ast
open Lexer

exception Parse_error of string * int * int

type state = { mutable toks : located list }

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let error st msg =
  let t = peek st in
  raise
    (Parse_error
       (Printf.sprintf "%s (found '%s')" msg (token_to_string t.tok), t.line, t.col))

let advance st =
  match st.toks with
  | [] -> assert false
  | { tok = EOF; _ } :: _ -> ()
  | _ :: rest -> st.toks <- rest

(* Only ever called with constant (payload-free) constructors, which are
   immediates — physical equality decides exactly. *)
let check st tok = (peek st).tok == tok

let accept st tok =
  if check st tok then begin
    advance st;
    true
  end
  else false

let expect st tok msg = if not (accept st tok) then error st msg

let expect_ident st msg =
  match (peek st).tok with
  | IDENT s ->
      advance st;
      s
  | _ -> error st msg

(* ---- types ---- *)

let parse_type st =
  match (peek st).tok with
  | KW_INT ->
      advance st;
      TInt
  | KW_BOOL ->
      advance st;
      TBool
  | KW_VOID ->
      advance st;
      TVoid
  | IDENT s ->
      advance st;
      TClass s
  | _ -> error st "expected a type"

(* ---- expressions ---- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept st PIPEPIPE do
    lhs := EBinop (OrElse, !lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_bitor st) in
  while accept st AMPAMP do
    lhs := EBinop (AndAlso, !lhs, parse_bitor st)
  done;
  !lhs

and parse_bitor st =
  let lhs = ref (parse_bitxor st) in
  while accept st PIPE do
    lhs := EBinop (BitOr, !lhs, parse_bitxor st)
  done;
  !lhs

and parse_bitxor st =
  let lhs = ref (parse_bitand st) in
  while accept st CARET do
    lhs := EBinop (BitXor, !lhs, parse_bitand st)
  done;
  !lhs

and parse_bitand st =
  let lhs = ref (parse_equality st) in
  while accept st AMP do
    lhs := EBinop (BitAnd, !lhs, parse_equality st)
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let continue = ref true in
  while !continue do
    if accept st EQ then lhs := EBinop (Eq, !lhs, parse_relational st)
    else if accept st NE then lhs := EBinop (Ne, !lhs, parse_relational st)
    else continue := false
  done;
  !lhs

and parse_relational st =
  let lhs = ref (parse_shift st) in
  let continue = ref true in
  while !continue do
    if accept st LT then lhs := EBinop (Lt, !lhs, parse_shift st)
    else if accept st LE then lhs := EBinop (Le, !lhs, parse_shift st)
    else if accept st GT then lhs := EBinop (Gt, !lhs, parse_shift st)
    else if accept st GE then lhs := EBinop (Ge, !lhs, parse_shift st)
    else continue := false
  done;
  !lhs

and parse_shift st =
  let lhs = ref (parse_additive st) in
  let continue = ref true in
  while !continue do
    if accept st SHL then lhs := EBinop (Shl, !lhs, parse_additive st)
    else if accept st SHR then lhs := EBinop (Shr, !lhs, parse_additive st)
    else continue := false
  done;
  !lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    if accept st PLUS then lhs := EBinop (Add, !lhs, parse_multiplicative st)
    else if accept st MINUS then lhs := EBinop (Sub, !lhs, parse_multiplicative st)
    else continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    if accept st STAR then lhs := EBinop (Mul, !lhs, parse_unary st)
    else if accept st SLASH then lhs := EBinop (Div, !lhs, parse_unary st)
    else if accept st PERCENT then lhs := EBinop (Rem, !lhs, parse_unary st)
    else continue := false
  done;
  !lhs

and parse_unary st =
  if accept st MINUS then EUnop (Neg, parse_unary st)
  else if accept st BANG then EUnop (Not, parse_unary st)
  else parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  while accept st DOT do
    let field = expect_ident st "expected field name after '.'" in
    e := EField (!e, field)
  done;
  !e

and parse_args st =
  expect st LPAREN "expected '('";
  if accept st RPAREN then []
  else begin
    let args = ref [ parse_expr st ] in
    while accept st COMMA do
      args := parse_expr st :: !args
    done;
    expect st RPAREN "expected ')'";
    List.rev !args
  end

and parse_primary st =
  match (peek st).tok with
  | INT n ->
      advance st;
      EInt n
  | KW_TRUE ->
      advance st;
      EBool true
  | KW_FALSE ->
      advance st;
      EBool false
  | KW_NULL ->
      advance st;
      ENull
  | KW_NEW ->
      advance st;
      let cls = expect_ident st "expected class name after 'new'" in
      ENew (cls, parse_args st)
  | IDENT name ->
      advance st;
      if check st LPAREN then ECall (name, parse_args st) else EVar name
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN "expected ')'";
      e
  | _ -> error st "expected an expression"

(* ---- statements ---- *)

let parse_prob st =
  if accept st AT then begin
    match (peek st).tok with
    | FLOAT f ->
        advance st;
        Some f
    | INT n ->
        advance st;
        Some (float_of_int n)
    | _ -> error st "expected a probability after '@'"
  end
  else None

let rec parse_block st =
  expect st LBRACE "expected '{'";
  let stmts = ref [] in
  while not (check st RBRACE) do
    if check st EOF then error st "unterminated block";
    stmts := parse_stmt st :: !stmts
  done;
  expect st RBRACE "expected '}'";
  List.rev !stmts

and parse_stmt st =
  match (peek st).tok with
  | KW_IF ->
      advance st;
      expect st LPAREN "expected '(' after 'if'";
      let cond = parse_expr st in
      expect st RPAREN "expected ')'";
      let prob = parse_prob st in
      let then_ = parse_block st in
      let else_ =
        if accept st KW_ELSE then
          if check st KW_IF then [ parse_stmt st ] else parse_block st
        else []
      in
      SIf { cond; prob; then_; else_ }
  | KW_WHILE ->
      advance st;
      expect st LPAREN "expected '(' after 'while'";
      let cond = parse_expr st in
      expect st RPAREN "expected ')'";
      let prob = parse_prob st in
      let body = parse_block st in
      SWhile { cond; prob; body }
  | KW_RETURN ->
      advance st;
      if accept st SEMI then SReturn None
      else begin
        let e = parse_expr st in
        expect st SEMI "expected ';' after return";
        SReturn (Some e)
      end
  | LBRACE -> SBlock (parse_block st)
  | KW_INT | KW_BOOL | KW_VOID ->
      let ty = parse_type st in
      parse_decl_tail st ty
  | IDENT name -> (
      (* Could be: class-typed declaration `A p ...;`, assignment, or an
         expression statement.  Disambiguate on the second token. *)
      match st.toks with
      | _ :: { tok = IDENT _; _ } :: _ ->
          advance st;
          parse_decl_tail st (TClass name)
      | _ ->
          let e = parse_expr st in
          parse_assign_or_expr st e)
  | _ ->
      let e = parse_expr st in
      parse_assign_or_expr st e

and parse_decl_tail st ty =
  let name = expect_ident st "expected variable name" in
  let init = if accept st ASSIGN then Some (parse_expr st) else None in
  expect st SEMI "expected ';'";
  SDecl (ty, name, init)

and parse_assign_or_expr st e =
  if accept st ASSIGN then begin
    let rhs = parse_expr st in
    expect st SEMI "expected ';'";
    match e with
    | EVar name -> SAssign (LVar name, rhs)
    | EField (obj, field) -> SAssign (LField (obj, field), rhs)
    | _ -> error st "invalid assignment target"
  end
  else begin
    expect st SEMI "expected ';'";
    SExpr e
  end

(* ---- declarations ---- *)

let parse_class st =
  expect st KW_CLASS "expected 'class'";
  let cd_name = expect_ident st "expected class name" in
  expect st LBRACE "expected '{'";
  let fields = ref [] in
  while not (check st RBRACE) do
    let ty = parse_type st in
    let name = expect_ident st "expected field name" in
    expect st SEMI "expected ';' after field";
    fields := (ty, name) :: !fields
  done;
  expect st RBRACE "expected '}'";
  { cd_name; cd_fields = List.rev !fields }

let parse_global st =
  expect st KW_GLOBAL "expected 'global'";
  let ty = parse_type st in
  let name = expect_ident st "expected global name" in
  expect st SEMI "expected ';'";
  { gd_name = name; gd_type = ty }

let parse_function st ret name =
  expect st LPAREN "expected '('";
  let params = ref [] in
  if not (check st RPAREN) then begin
    let parse_param () =
      let ty = parse_type st in
      let pname = expect_ident st "expected parameter name" in
      params := (ty, pname) :: !params
    in
    parse_param ();
    while accept st COMMA do
      parse_param ()
    done
  end;
  expect st RPAREN "expected ')'";
  let body = parse_block st in
  { fn_name = name; fn_ret = ret; fn_params = List.rev !params; fn_body = body }

(** Parse a whole program. *)
let parse_program src =
  let st = { toks = Lexer.tokenize src } in
  let classes = ref [] and globals = ref [] and functions = ref [] in
  while not (check st EOF) do
    match (peek st).tok with
    | KW_CLASS -> classes := parse_class st :: !classes
    | KW_GLOBAL -> globals := parse_global st :: !globals
    | _ ->
        let ret = parse_type st in
        let name = expect_ident st "expected function name" in
        functions := parse_function st ret name :: !functions
  done;
  {
    classes = List.rev !classes;
    globals = List.rev !globals;
    functions = List.rev !functions;
  }
