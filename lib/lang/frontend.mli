(** Frontend driver: source text → verified SSA program. *)

exception Error of string

(** Parse, type-check and lower a source string.  The produced IR is
    verified unless [verify:false].
    @raise Error with a located message on any frontend failure. *)
val compile : ?verify:bool -> string -> Ir.Program.t

(** Parse only (for tests that inspect the AST).
    @raise Parser.Parse_error / Lexer.Lex_error on malformed input. *)
val parse : string -> Ast.program
