(** Static type checker.  Ensures that programs accepted by the frontend
    cannot fault in the interpreter (other than null dereferences, which
    remain runtime errors as in the JVM). *)

open Ast

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type env = {
  classes : (string, (typ * string) list) Hashtbl.t;
  globals : (string, typ) Hashtbl.t;
  funcs : (string, typ * typ list) Hashtbl.t;
  mutable locals : (string * typ) list list;  (** scope stack *)
  ret : typ;
}

let push_scope env = env.locals <- [] :: env.locals
let pop_scope env = env.locals <- List.tl env.locals

let declare_local env name ty =
  if List.exists (fun scope -> List.mem_assoc name scope) env.locals then
    err "duplicate variable '%s'" name;
  (* Locals may not shadow globals: lowering resolves a name to a local if
     it is declared anywhere in the function. *)
  if Hashtbl.mem env.globals name then err "local '%s' shadows a global" name;
  match env.locals with
  | scope :: rest -> env.locals <- ((name, ty) :: scope) :: rest
  | [] -> assert false

let lookup_var env name =
  let rec find = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some ty -> Some ty
        | None -> find rest)
  in
  match find env.locals with
  | Some ty -> Some ty
  | None -> Hashtbl.find_opt env.globals name

(* [TNull] is represented as the type of the 'null' literal: compatible
   with every class type. *)
let compatible ~expected ~actual =
  match (expected, actual) with
  | TClass _, TClass "<null>" -> true
  | a, b -> a = b

let type_name = typ_to_string

let rec check_expr env = function
  | EInt _ -> TInt
  | EBool _ -> TBool
  | ENull -> TClass "<null>"
  | EVar name -> (
      match lookup_var env name with
      | Some ty -> ty
      | None -> err "unknown variable '%s'" name)
  | EUnop (Neg, e) ->
      let t = check_expr env e in
      if t <> TInt then err "unary '-' expects int, got %s" (type_name t);
      TInt
  | EUnop (Not, e) ->
      let t = check_expr env e in
      if t <> TBool then err "'!' expects bool, got %s" (type_name t);
      TBool
  | EBinop ((AndAlso | OrElse) as op, a, b) ->
      let ta = check_expr env a and tb = check_expr env b in
      if ta <> TBool || tb <> TBool then
        err "'%s' expects bools, got %s and %s" (binop_to_string op)
          (type_name ta) (type_name tb);
      TBool
  | EBinop ((Eq | Ne) as op, a, b) -> (
      let ta = check_expr env a and tb = check_expr env b in
      match (ta, tb) with
      | TInt, TInt | TBool, TBool -> TBool
      | TClass _, TClass _ -> TBool
      | _ ->
          err "'%s' on incompatible types %s and %s" (binop_to_string op)
            (type_name ta) (type_name tb))
  | EBinop ((Lt | Le | Gt | Ge) as op, a, b) ->
      let ta = check_expr env a and tb = check_expr env b in
      if ta <> TInt || tb <> TInt then
        err "'%s' expects ints, got %s and %s" (binop_to_string op)
          (type_name ta) (type_name tb);
      TBool
  | EBinop (op, a, b) ->
      let ta = check_expr env a and tb = check_expr env b in
      if ta <> TInt || tb <> TInt then
        err "'%s' expects ints, got %s and %s" (binop_to_string op)
          (type_name ta) (type_name tb);
      TInt
  | EField (e, field) -> (
      match check_expr env e with
      | TClass cls when cls <> "<null>" -> (
          match Hashtbl.find_opt env.classes cls with
          | None -> err "unknown class '%s'" cls
          | Some fields -> (
              match
                List.find_opt (fun (_, name) -> name = field) fields
              with
              | Some (ty, _) -> ty
              | None -> err "class %s has no field '%s'" cls field))
      | t -> err "field access on non-object type %s" (type_name t))
  | ENew (cls, args) -> (
      match Hashtbl.find_opt env.classes cls with
      | None -> err "unknown class '%s'" cls
      | Some fields ->
          if List.length args <> List.length fields then
            err "new %s expects %d arguments, got %d" cls (List.length fields)
              (List.length args);
          List.iter2
            (fun (fty, fname) arg ->
              let at = check_expr env arg in
              if not (compatible ~expected:fty ~actual:at) then
                err "field %s.%s expects %s, got %s" cls fname (type_name fty)
                  (type_name at))
            fields args;
          TClass cls)
  | ECall (name, args) -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> err "unknown function '%s'" name
      | Some (ret, param_tys) ->
          if List.length args <> List.length param_tys then
            err "%s expects %d arguments, got %d" name (List.length param_tys)
              (List.length args);
          List.iter2
            (fun pty arg ->
              let at = check_expr env arg in
              if not (compatible ~expected:pty ~actual:at) then
                err "argument of %s expects %s, got %s" name (type_name pty)
                  (type_name at))
            param_tys args;
          ret)

let rec check_stmt env = function
  | SDecl (ty, name, init) ->
      if ty = TVoid then err "variable '%s' cannot be void" name;
      (match ty with
      | TClass cls when not (Hashtbl.mem env.classes cls) ->
          err "unknown class '%s'" cls
      | _ -> ());
      (match init with
      | None -> ()
      | Some e ->
          let t = check_expr env e in
          if not (compatible ~expected:ty ~actual:t) then
            err "initializer of '%s' expects %s, got %s" name (type_name ty)
              (type_name t));
      declare_local env name ty
  | SAssign (LVar name, e) -> (
      match lookup_var env name with
      | None -> err "unknown variable '%s'" name
      | Some ty ->
          let t = check_expr env e in
          if not (compatible ~expected:ty ~actual:t) then
            err "assignment to '%s' expects %s, got %s" name (type_name ty)
              (type_name t))
  | SAssign (LField (obj, field), e) -> (
      match check_expr env (EField (obj, field)) with
      | fty ->
          let t = check_expr env e in
          if not (compatible ~expected:fty ~actual:t) then
            err "assignment to field '%s' expects %s, got %s" field
              (type_name fty) (type_name t))
  | SIf { cond; prob; then_; else_ } ->
      let t = check_expr env cond in
      if t <> TBool then err "if condition must be bool, got %s" (type_name t);
      (match prob with
      | Some p when p < 0.0 || p > 1.0 -> err "probability %.3f out of range" p
      | _ -> ());
      push_scope env;
      List.iter (check_stmt env) then_;
      pop_scope env;
      push_scope env;
      List.iter (check_stmt env) else_;
      pop_scope env
  | SWhile { cond; prob; body } ->
      let t = check_expr env cond in
      if t <> TBool then
        err "while condition must be bool, got %s" (type_name t);
      (match prob with
      | Some p when p < 0.0 || p > 1.0 -> err "probability %.3f out of range" p
      | _ -> ());
      push_scope env;
      List.iter (check_stmt env) body;
      pop_scope env
  | SReturn None ->
      if env.ret <> TVoid then
        err "missing return value in non-void function"
  | SReturn (Some e) ->
      if env.ret = TVoid then err "void function returns a value";
      let t = check_expr env e in
      if not (compatible ~expected:env.ret ~actual:t) then
        err "return expects %s, got %s" (type_name env.ret) (type_name t)
  | SExpr e -> ignore (check_expr env e)
  | SBlock stmts ->
      push_scope env;
      List.iter (check_stmt env) stmts;
      pop_scope env

(** Check a whole program; raises {!Type_error} on the first violation. *)
let check_program (p : program) =
  let classes = Hashtbl.create 8 in
  List.iter
    (fun cd ->
      if Hashtbl.mem classes cd.cd_name then
        err "duplicate class '%s'" cd.cd_name;
      Hashtbl.replace classes cd.cd_name cd.cd_fields)
    p.classes;
  let globals = Hashtbl.create 8 in
  List.iter
    (fun gd ->
      if Hashtbl.mem globals gd.gd_name then
        err "duplicate global '%s'" gd.gd_name;
      if gd.gd_type = TVoid then err "global '%s' cannot be void" gd.gd_name;
      Hashtbl.replace globals gd.gd_name gd.gd_type)
    p.globals;
  let funcs = Hashtbl.create 8 in
  List.iter
    (fun f ->
      if Hashtbl.mem funcs f.fn_name then
        err "duplicate function '%s'" f.fn_name;
      Hashtbl.replace funcs f.fn_name
        (f.fn_ret, List.map fst f.fn_params))
    p.functions;
  List.iter
    (fun f ->
      let env = { classes; globals; funcs; locals = [ [] ]; ret = f.fn_ret } in
      List.iter
        (fun (ty, name) ->
          if ty = TVoid then err "parameter '%s' cannot be void" name;
          declare_local env name ty)
        f.fn_params;
      push_scope env;
      List.iter (check_stmt env) f.fn_body;
      pop_scope env)
    p.functions
