(** Frontend driver: source text → verified SSA program. *)

exception Error of string

(** Parse, type-check and lower a source string.  Raises {!Error} with a
    located message on any frontend failure; the produced IR is verified. *)
let compile ?(verify = true) src =
  let ast =
    try Parser.parse_program src with
    | Lexer.Lex_error (msg, line, col) ->
        raise (Error (Printf.sprintf "lex error at %d:%d: %s" line col msg))
    | Parser.Parse_error (msg, line, col) ->
        raise (Error (Printf.sprintf "parse error at %d:%d: %s" line col msg))
  in
  (try Typecheck.check_program ast
   with Typecheck.Type_error msg ->
     raise (Error (Printf.sprintf "type error: %s" msg)));
  let prog =
    try Lower.lower_program ast
    with Lower.Lower_error msg ->
      raise (Error (Printf.sprintf "lowering error: %s" msg))
  in
  if verify then
    Ir.Program.iter_functions prog (fun g ->
        match Ir.Verifier.verify_result g with
        | Ok () -> ()
        | Error msg ->
            raise
              (Error
                 (Printf.sprintf "internal error: lowering of %s produced \
                                  invalid IR: %s"
                    (Ir.Graph.name g) msg)));
  prog

(** Parse and type-check only (for tests that inspect the AST). *)
let parse src = Parser.parse_program src
