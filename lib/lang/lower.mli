(** AST → SSA lowering, using the on-the-fly SSA construction of
    Braun et al. ("Simple and Efficient Construction of Static Single
    Assignment Form", CC 2013): local variables are written and read
    per-block; reads in unsealed blocks create operandless phis that are
    completed when the block's predecessors are final; trivial phis are
    removed recursively.

    Short-circuit [&&]/[||] lower to control flow and therefore introduce
    merges with phis — prime duplication candidates, mirroring how Java
    bytecode produces them. *)

exception Lower_error of string

(** Lower one (type-checked) function. *)
val lower_function : Ast.program -> Ast.func -> Ir.Graph.t

(** Lower a type-checked program to an IR program.  The entry function is
    ["main"] when present, otherwise the first function. *)
val lower_program : Ast.program -> Ir.Program.t
