(** Hand-written lexer with line/column tracking. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_CLASS
  | KW_GLOBAL
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_NEW
  | KW_NULL
  | KW_TRUE
  | KW_FALSE
  | KW_INT
  | KW_BOOL
  | KW_VOID
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | SEMI
  | COMMA
  | DOT
  | AT
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | AMPAMP
  | PIPE
  | PIPEPIPE
  | CARET
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | BANG
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let keyword_of_string = function
  | "class" -> Some KW_CLASS
  | "global" -> Some KW_GLOBAL
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | "new" -> Some KW_NEW
  | "null" -> Some KW_NULL
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | "int" -> Some KW_INT
  | "bool" -> Some KW_BOOL
  | "void" -> Some KW_VOID
  | _ -> None

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW_CLASS -> "class"
  | KW_GLOBAL -> "global"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_NEW -> "new"
  | KW_NULL -> "null"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_INT -> "int"
  | KW_BOOL -> "bool"
  | KW_VOID -> "void"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | AT -> "@"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | AMPAMP -> "&&"
  | PIPE -> "|"
  | PIPEPIPE -> "||"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | BANG -> "!"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(** Tokenize a whole source string.  ["// ..."] and ["/* ... */"] comments
    are skipped. *)
let tokenize src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let tokens = ref [] in
  (* NUL sentinel instead of an option: the lexer only ever compares the
     lookahead against specific printable characters. *)
  let peek1 () = if !pos + 1 < n then src.[!pos + 1] else '\000' in
  let advance () =
    (if src.[!pos] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr pos
  in
  let error msg = raise (Lex_error (msg, !line, !col)) in
  let emit tok ~line ~col = tokens := { tok; line; col } :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    let tl = !line and tc = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek1 () = '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '/' && peek1 () = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '*' && peek1 () = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then error "unterminated comment"
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      if !pos < n && src.[!pos] = '.' && is_digit (peek1 ()) then begin
        advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done;
        emit
          (FLOAT (float_of_string (String.sub src start (!pos - start))))
          ~line:tl ~col:tc
      end
      else
        emit
          (INT (int_of_string (String.sub src start (!pos - start))))
          ~line:tl ~col:tc
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      match keyword_of_string word with
      | Some kw -> emit kw ~line:tl ~col:tc
      | None -> emit (IDENT word) ~line:tl ~col:tc
    end
    else begin
      let two tok = advance (); advance (); emit tok ~line:tl ~col:tc in
      let one tok = advance (); emit tok ~line:tl ~col:tc in
      match (c, peek1 ()) with
      | '&', '&' -> two AMPAMP
      | '|', '|' -> two PIPEPIPE
      | '<', '<' -> two SHL
      | '>', '>' -> two SHR
      | '=', '=' -> two EQ
      | '!', '=' -> two NE
      | '<', '=' -> two LE
      | '>', '=' -> two GE
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | '@', _ -> one AT
      | '=', _ -> one ASSIGN
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '!', _ -> one BANG
      | _ -> error (Printf.sprintf "unexpected character %c" c)
    end
  done;
  List.rev ({ tok = EOF; line = !line; col = !col } :: !tokens)
