(** Recursive-descent parser.  Precedence, lowest to highest:
    [||] < [&&] < [|] < [^] < [&] < [== !=] < [< <= > >=] < [<< >>]
    < [+ -] < [* / %] < unary < postfix field access. *)

exception Parse_error of string * int * int

(** Parse a whole program.
    @raise Parse_error with a position and the offending token.
    @raise Lexer.Lex_error on lexical errors. *)
val parse_program : string -> Ast.program
