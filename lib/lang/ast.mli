(** Abstract syntax of the mini source language.

    A small statically-typed imperative language designed to exhibit every
    optimization opportunity from the paper's Section 2: integers and
    booleans, classes with mutable fields ([new], [.field]), global
    variables, functions, [if]/[while] with optional branch probability
    annotations ([@0.9], standing in for JIT profiles), and short-circuit
    [&&]/[||] (which lower to control flow and thus create merges with
    phis). *)

type typ = TInt | TBool | TVoid | TClass of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | BitAnd
  | BitOr
  | BitXor
  | Shl
  | Shr
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | AndAlso  (** short-circuit && *)
  | OrElse  (** short-circuit || *)

type unop = Neg | Not

type expr =
  | EInt of int
  | EBool of bool
  | ENull
  | EVar of string  (** local or global, resolved during lowering *)
  | EBinop of binop * expr * expr
  | EUnop of unop * expr
  | EField of expr * string
  | ENew of string * expr list
  | ECall of string * expr list

type lvalue = LVar of string | LField of expr * string

type stmt =
  | SDecl of typ * string * expr option
  | SAssign of lvalue * expr
  | SIf of { cond : expr; prob : float option; then_ : stmt list; else_ : stmt list }
  | SWhile of { cond : expr; prob : float option; body : stmt list }
  | SReturn of expr option
  | SExpr of expr
  | SBlock of stmt list

type func = {
  fn_name : string;
  fn_ret : typ;
  fn_params : (typ * string) list;
  fn_body : stmt list;
}

type class_decl = { cd_name : string; cd_fields : (typ * string) list }
type global_decl = { gd_name : string; gd_type : typ }

type program = {
  classes : class_decl list;
  globals : global_decl list;
  functions : func list;
}

val typ_to_string : typ -> string
val binop_to_string : binop -> string
