(** Static type checker.  Ensures that programs accepted by the frontend
    cannot fault in the interpreter (other than null dereferences, which
    remain runtime errors as in the JVM).

    Enforced rules include: declared-before-use with block scoping, no
    duplicate or global-shadowing locals (lowering resolves names by
    whole-function scope), class/field existence, constructor arity,
    [bool] conditions, return-type agreement, and probability annotations
    within [0, 1]. *)

exception Type_error of string

(** Check a whole program.
    @raise Type_error describing the first violation. *)
val check_program : Ast.program -> unit
