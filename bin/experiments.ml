(** Regenerates every table and figure of the paper's evaluation
    (Figures 4–8, the headline numbers, and the three ablations).
    Output of this binary is recorded in EXPERIMENTS.md. *)

let () =
  let section title = Format.printf "@.=== %s ===@.@." title in
  section "Figure 4";
  Format.printf "%a@." Harness.Experiments.pp_figure4
    (Harness.Experiments.figure4 ());
  let summaries = Harness.Experiments.run_all_figures () in
  List.iter
    (fun s ->
      section
        (Printf.sprintf "%s: %s" s.Harness.Report.figure
           s.Harness.Report.suite_name);
      Format.printf "%a@." Harness.Report.pp_suite s)
    summaries;
  section "Headline";
  Format.printf "%a@." Harness.Report.pp_headline
    (Harness.Report.headline_of summaries);
  section "Ablation: backtracking";
  Format.printf "%a@." Harness.Experiments.pp_backtracking
    (Harness.Experiments.run_backtracking_ablation ());
  section "Ablation: iterations";
  Format.printf "%a@." Harness.Experiments.pp_iterations
    (Harness.Experiments.run_iteration_ablation ());
  section "Ablation: trade-off constants";
  Format.printf "%a@." Harness.Experiments.pp_budget
    (Harness.Experiments.run_budget_ablation ());
  section "Extension: path-based duplication";
  Format.printf "%a@." Harness.Experiments.pp_path_ablation
    (Harness.Experiments.run_path_ablation ())
