(** [dbdsc] — the command-line compiler driver.

    Compiles a mini-language source file, optimizes it under a chosen
    configuration (baseline / dbds / dupalot / backtracking), optionally
    dumps the IR before and after, reports statistics, and can run the
    program on the cost-model interpreter. *)

open Cmdliner

type dump = No_dump | Dump_before | Dump_after | Dump_both | Dump_canon

(** Options of the compilation service (server, client and the
    in-process artifact cache). *)
type service_opts = {
  serve : string option;  (** run as a compile server on this socket *)
  connect : string option;  (** compile FILE through this server *)
  fleet_coord : string option;  (** run a membership coordinator here *)
  fleet_join : string option;
      (** make [--serve] a fleet worker joined to this coordinator *)
  fleet_connect : string option;
      (** route FILE's compiles through this coordinator's fleet *)
  node_id : string option;  (** ring id of a fleet worker *)
  fleet_replicas : int;  (** successor copies pushed on publish *)
  fleet_beat_ms : int;  (** worker heartbeat period *)
  cache_dir : string option;  (** attach an on-disk artifact store *)
  cache_capacity : int;  (** store byte budget (LRU GC) *)
  canon : bool;
      (** canonicalize function IR (print → parse) after inlining, before
          the per-function pipeline — the form the service compiles, so
          direct and service outputs are byte-comparable *)
  deadline_ms : int option;  (** per-request deadline (client mode) *)
  delay_ms : int option;
      (** artificial compile latency (test hook: client header / server
          broker default) *)
  svc_stats : bool;  (** fetch and print server statistics *)
  svc_shutdown : bool;  (** ask the server to shut down *)
  queue_limit : int;  (** server admission-queue bound *)
  workers : int;  (** server compile domains *)
  frontdoor : bool;
      (** make [--serve] the async event-loop front door instead of the
          classic thread-per-connection server *)
  tenant : string option;  (** quota account presented by the client *)
  lane : string option;  (** client priority lane (interactive/batch) *)
  binary : bool;  (** negotiate the compact binary framing *)
  tenant_rate : float;  (** front-door tokens per second per tenant *)
  tenant_burst : float;  (** front-door token-bucket depth *)
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let mode_conv =
  Arg.enum
    [
      ("baseline", Dbds.Config.Off);
      ("off", Dbds.Config.Off);
      ("dbds", Dbds.Config.Dbds);
      ("dupalot", Dbds.Config.Dupalot);
      ("backtracking", Dbds.Config.Backtracking);
      ("condelim-dup", Dbds.Config.Condelim_dup);
    ]

(* Contained failures are reported, never silent: the compilation is
   degraded (those functions kept their unoptimized IR) but complete. *)
let print_failures failures =
  List.iter
    (fun f ->
      Format.eprintf "warning: %a@." Dbds.Driver.pp_failure f;
      match f.Dbds.Driver.fail_bundle with
      | Some path -> Format.eprintf "  crash bundle: %s@." path
      | None -> ())
    failures

let replay path =
  let b = Dbds.Bundle.read path in
  Format.printf "replaying %s: function %s, crash at %s@." path
    b.Dbds.Bundle.b_fn b.Dbds.Bundle.b_site;
  (match b.Dbds.Bundle.b_plan with
  | Some p -> Format.printf "fault plan: %s@." (Dbds.Faults.to_string p)
  | None -> ());
  (match b.Dbds.Bundle.b_profile with
  | Some p ->
      Format.printf "profile snapshot: %d recorded branch(es)@."
        (List.length
           (List.filter
              (fun l -> String.trim l <> "")
              (String.split_on_char '\n' p)))
  | None -> ());
  match Dbds.Driver.replay_bundle b with
  | `Reproduced f ->
      Format.printf "reproduced: %a@." Dbds.Driver.pp_failure f;
      Format.printf "backtrace:@.%s@." f.Dbds.Driver.fail_backtrace
  | `Clean -> Format.printf "did not reproduce: the function now optimizes cleanly@."

let contains_substring s sub =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  n = 0 || at 0

(* The service compiles post-inlining compilation units, so client mode
   (and --canon direct mode) applies the program-level inline of the
   effective pipeline locally, up front. *)
let apply_inline prog config =
  if
    contains_substring
      (Opt.Spec.to_string (Dbds.Driver.default_spec config))
      "inline"
  then begin
    let inline_spec =
      match Opt.Spec.of_string "inline" with
      | Ok s -> s
      | Error msg -> failwith msg
    in
    ignore
      (Dbds.Driver.optimize_program_report
         ~config:{ config with Dbds.Config.passes = Some inline_spec }
         ~jobs:1 prog)
  end

(* Replace every function body with its print → parse round-trip: dense
   ids in appearance order — exactly the form a service worker parses
   off the wire, so tie-breaks downstream see identical inputs. *)
let canonicalize_program prog =
  List.iter
    (fun fn ->
      match Ir.Program.find_function prog fn with
      | Some g ->
          Ir.Program.add_function prog
            (Ir.Parse.parse_graph (Ir.Printer.graph_to_string g))
      | None -> ())
    (Ir.Program.function_names prog)

let run_serve ~sock svc =
  let store =
    Option.map
      (fun dir -> Service.Store.create ~capacity:svc.cache_capacity ~dir ())
      svc.cache_dir
  in
  let broker =
    Service.Broker.create ~workers:svc.workers ~queue_limit:svc.queue_limit
      ?delay_s:(Option.map (fun ms -> float_of_int ms /. 1000.) svc.delay_ms)
      ~store ()
  in
  (* A worker's ring id defaults to its socket's basename — unique per
     node as long as each worker has its own socket, which it must. *)
  let fleet =
    Option.map
      (fun coord ->
        {
          Service.Server.fl_id =
            (match svc.node_id with
            | Some id -> id
            | None -> Filename.basename sock);
          fl_addr = sock;
          fl_coord = coord;
          fl_replicas = svc.fleet_replicas;
          fl_beat_s = float_of_int svc.fleet_beat_ms /. 1000.;
        })
      svc.fleet_join
  in
  if svc.frontdoor then begin
    (* Fleet membership verbs stay with the classic server; a fleet
       worker keeps its thread-per-connection front end. *)
    if fleet <> None then
      failwith "--frontdoor does not combine with --fleet-join";
    Service.Frontdoor.serve
      ~log:(fun line -> Format.eprintf "[dbdsc --frontdoor] %s@." line)
      ~config:
        {
          Service.Frontdoor.default_config with
          fd_dispatchers = svc.workers;
          fd_queue_limit = svc.queue_limit;
          fd_tenant_rate = svc.tenant_rate;
          fd_tenant_burst = svc.tenant_burst;
        }
      ~sock ~broker ()
  end
  else
    Service.Server.serve
      ~log:(fun line -> Format.eprintf "[dbdsc --serve] %s@." line)
      ?fleet ~sock ~broker ()

let run_coordinator ~sock =
  Service.Fleet.coordinator
    ~log:(fun line -> Format.eprintf "[dbdsc --fleet] %s@." line)
    ~sock ()

let run_client ~sock ~config ~file svc =
  let c =
    Service.Client.connect ~deadline_s:5.0 ?tenant:svc.tenant ?lane:svc.lane
      ~binary:svc.binary ~sock ()
  in
  Fun.protect
    ~finally:(fun () -> Service.Client.close c)
    (fun () ->
      (match file with
      | None ->
          if not (svc.svc_stats || svc.svc_shutdown) then
            failwith "--connect needs a FILE, --service-stats or --service-shutdown"
      | Some f ->
          let prog = Lang.Frontend.compile (read_file f) in
          apply_inline prog config;
          let results =
            List.map
              (fun fn ->
                let g = Option.get (Ir.Program.find_function prog fn) in
                match
                  Service.Client.compile_ex ?deadline_ms:svc.deadline_ms
                    ?delay_ms:svc.delay_ms ?lane:svc.lane ~config ~fn
                    ~ir:(Ir.Printer.graph_to_string g) c
                with
                | Ok (Service.Broker.Done { ir; _ }, _) -> ir
                | Ok (Service.Broker.Shed, Some retry_ms) ->
                    failwith
                      (Printf.sprintf
                         "service shed %s: retry after %d ms" fn retry_ms)
                | Ok (o, _) ->
                    failwith
                      (Printf.sprintf "service refused %s: %s" fn
                         (Service.Broker.outcome_label o))
                | Error msg -> failwith ("service: " ^ msg))
              (Ir.Program.function_names prog)
          in
          List.iter (fun ir -> Format.printf "%s@." ir) results);
      if svc.svc_stats then begin
        match
          Service.Client.roundtrip c
            { Service.Protocol.verb = "stats"; fields = [] }
        with
        | Ok reply ->
            let fld k =
              Option.value ~default:"" (Service.Protocol.field reply k)
            in
            let store_line = fld "store" in
            Format.printf "=== service ===@.%s@.%s@.counts: %s@."
              (fld "broker")
              (if store_line = "none" then "store: none" else store_line)
              (fld "counts");
            (* Only the front door reports admission/lane/tenant-histogram
               counters; a classic server's reply lacks the field. *)
            (match Service.Protocol.field reply "frontdoor" with
            | Some fd -> Format.printf "=== frontdoor ===@.%s@." fd
            | None -> ())
        | Error msg -> failwith ("service stats: " ^ msg)
      end;
      if svc.svc_shutdown then
        match Service.Client.shutdown_server c with
        | Ok () -> ()
        | Error msg -> failwith ("service shutdown: " ^ msg))

(* Fleet client mode: route each function's compile onto the ring via
   the coordinator's membership view, with failover along the replica
   successors.  Stats and shutdown fan out to every node in the view
   (the per-node counts line carries the federation counters: peer
   hits/misses, replication, evictions). *)
let run_fleet_client ~coord ~config ~file svc =
  let r =
    Service.Client.Router.create ~connect_deadline_s:5.0 ~coord ()
  in
  Fun.protect
    ~finally:(fun () -> Service.Client.Router.close_all r)
    (fun () ->
      (match file with
      | None ->
          if not (svc.svc_stats || svc.svc_shutdown) then
            failwith
              "--fleet-connect needs a FILE, --service-stats or \
               --service-shutdown"
      | Some f ->
          let prog = Lang.Frontend.compile (read_file f) in
          apply_inline prog config;
          let results =
            List.map
              (fun fn ->
                let g = Option.get (Ir.Program.find_function prog fn) in
                match
                  Service.Client.Router.compile ?deadline_ms:svc.deadline_ms
                    ?delay_ms:svc.delay_ms ~config ~fn
                    ~ir:(Ir.Printer.graph_to_string g) r
                with
                | Ok (Service.Broker.Done { ir; _ }) -> ir
                | Ok o ->
                    failwith
                      (Printf.sprintf "fleet refused %s: %s" fn
                         (Service.Broker.outcome_label o))
                | Error msg -> failwith ("fleet: " ^ msg))
              (Ir.Program.function_names prog)
          in
          List.iter (fun ir -> Format.printf "%s@." ir) results);
      let each_node f =
        List.iter
          (fun (id, addr) ->
            match Service.Client.connect ~deadline_s:5.0 ~sock:addr () with
            | exception _ -> Format.printf "=== node %s ===@.unreachable@." id
            | c ->
                Fun.protect
                  ~finally:(fun () -> Service.Client.close c)
                  (fun () -> f id c))
          (Service.Client.Router.view r).Service.Member.v_nodes
      in
      if svc.svc_stats then begin
        let v = Service.Client.Router.view r in
        Format.printf "=== fleet ===@.epoch %d, %d node(s)@."
          v.Service.Member.v_epoch
          (List.length v.Service.Member.v_nodes);
        each_node (fun id c ->
            match Service.Client.stats c with
            | Ok (broker_line, store_line, counts) ->
                Format.printf "=== node %s ===@.%s@.%s@.counts: %s@." id
                  broker_line
                  (if store_line = "none" then "store: none" else store_line)
                  counts
            | Error msg -> Format.printf "=== node %s ===@.error: %s@." id msg)
      end;
      if svc.svc_shutdown then begin
        each_node (fun id c ->
            match Service.Client.shutdown_server c with
            | Ok () -> ()
            | Error msg ->
                Format.eprintf "warning: node %s shutdown: %s@." id msg);
        match Service.Client.connect ~deadline_s:5.0 ~sock:coord () with
        | exception _ -> failwith "fleet shutdown: coordinator unreachable"
        | c ->
            Fun.protect
              ~finally:(fun () -> Service.Client.close c)
              (fun () ->
                match
                  Service.Client.roundtrip c
                    { Service.Protocol.verb = "shutdown"; fields = [] }
                with
                | Ok _ -> ()
                | Error msg -> failwith ("fleet shutdown: " ^ msg))
      end)

(* Tiered execution: run FILE on the VM engine for [runs] iterations and
   report steady-state behaviour instead of AOT-compiling. *)
let run_tiered prog ~config ~jobs ~icache ~args ~runs ~deopt_plan ~stats ~store
    =
  let warm = Option.map (Service.Warm.hooks ~config) store in
  let vm_config =
    Vm.Engine.config ~compile:config ?jobs ~icache ?deopt_plan
      ?warm_lookup:(Option.map fst warm) ?warm_spill:(Option.map snd warm) ()
  in
  let eng = Vm.Engine.create ~config:vm_config prog in
  let args = Array.of_list args in
  let first = ref None in
  let last = ref None in
  for i = 1 to max 1 runs do
    let result, rstats, _ = Vm.Engine.run_full eng ~args in
    if i = 1 then first := Some rstats.Interp.Machine.cycles;
    last := Some (result, rstats)
  done;
  List.iter
    (fun f ->
      Format.eprintf "warning (background compile): %a@." Dbds.Driver.pp_failure
        f)
    (Vm.Engine.failures eng);
  let result, rstats = Option.get !last in
  let vs = Vm.Engine.finish eng in
  Format.printf "result: %s@." (Interp.Machine.result_to_string result);
  Format.printf
    "steady-state cycles: %.1f (first run: %.1f), instructions: %d, icache: \
     %d hits / %d misses@."
    rstats.Interp.Machine.cycles
    (Option.value ~default:0.0 !first)
    rstats.Interp.Machine.instrs_executed rstats.Interp.Machine.icache_hits
    rstats.Interp.Machine.icache_misses;
  if stats then begin
    Format.printf "=== tiered vm ===@.%a@." Vm.Vmstats.pp vs;
    (match Vm.Codecache.entries (Vm.Engine.cache eng) with
    | [] -> ()
    | entries ->
        Format.printf "=== code cache ===@.";
        List.iter
          (fun (e : Vm.Codecache.entry) ->
            Format.printf
              "%-20s v%-3d size %5d, %6d hits, compiled from %d samples@."
              e.Vm.Codecache.ce_fn e.Vm.Codecache.ce_version
              e.Vm.Codecache.ce_size e.Vm.Codecache.ce_hits
              e.Vm.Codecache.ce_samples)
          entries);
    (match Vm.Engine.deopt_log eng with
    | [] -> ()
    | log ->
        Format.printf "=== deopts ===@.";
        List.iter (fun e -> Format.printf "%a@." Vm.Deopt.pp_event e) log);
    match store with
    | Some s ->
        Format.printf "=== artifact store ===@.%a@." Service.Store.pp_stats
          (Service.Store.stats s)
    | None -> ()
  end

(** Options of the deterministic whole-system simulator. *)
type sim_opts = {
  sim : bool;  (** run the service inside the simulator *)
  sim_seed : int;  (** first schedule seed *)
  sim_seeds : int;  (** number of consecutive seeds to sweep *)
  sim_shrink : bool;  (** minimize violating seeds and write bundles *)
  sim_clients : int;
  sim_chaos : int;  (** seed-derived fault plans per run *)
  sim_vm_warm : bool;  (** warm-start a tiered VM against the same store *)
  sim_faults : string option;  (** explicit plans, comma-separated *)
  sim_replay : string option;  (** re-run a sim bundle instead of sweeping *)
  sim_bundle_dir : string;
  sim_nodes : int;  (** fleet size; 0 = the classic single server *)
  sim_replicas : int;  (** successor copies on publish (fleet mode) *)
  sim_node_chaos : int;  (** seed-derived node kills/partitions per run *)
  sim_node_faults : string option;
      (** explicit node events, comma-separated [kill:N@T] /
          [rejoin:N@T] / [part:N@T1-T2] *)
  sim_frontdoor : bool;
      (** serve through the async front door (tenant/lane/binary-diverse
          clients plus protocol-chaos fibers) instead of the classic
          server *)
}

exception Sim_violations

(* Deterministic whole-system simulation: the full compile service —
   server, broker workers, clients, optionally the tiered VM — runs
   single-threaded under a virtual clock with seeded chaos.  Every
   seed must end in byte-identical IR or a clean contained failure;
   anything else (hang, wrong artifact, livelock) is a violation. *)
let run_sim sim =
  let module H = Simtest.Harness in
  let print_result (r : H.result) =
    Format.printf "sim seed %d: trace %s, %d events, %.3fs virtual [%s]@."
      r.H.r_spec.H.seed r.H.r_trace_hash r.H.r_events r.H.r_vtime
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.H.r_counts));
    List.iter
      (fun (v : H.violation) ->
        Format.printf "  VIOLATION %s: %s@." v.H.vio_kind v.H.vio_detail)
      r.H.r_violations
  in
  match sim.sim_replay with
  | Some path ->
      let r = H.replay path in
      Format.printf "replaying %s@." path;
      print_result r;
      if H.violating r then raise Sim_violations
  | None ->
      let spec =
        H.builder ~seed:sim.sim_seed ()
        |> H.with_clients sim.sim_clients
        |> H.with_chaos sim.sim_chaos
        |> H.with_vm_warm sim.sim_vm_warm
        |> H.with_nodes sim.sim_nodes
        |> H.with_replicas sim.sim_replicas
        |> H.with_node_chaos sim.sim_node_chaos
        |> H.with_frontdoor sim.sim_frontdoor
      in
      let spec =
        match sim.sim_node_faults with
        | None -> spec
        | Some s ->
            List.fold_left
              (fun acc part ->
                match H.node_event_of_string part with
                | Some ev -> H.with_node_fault ev acc
                | None ->
                    failwith ("--sim-node-faults: bad event " ^ part))
              spec
              (String.split_on_char ',' s)
      in
      let spec =
        match sim.sim_faults with
        | None -> spec
        | Some s ->
            List.fold_left
              (fun acc part ->
                match Dbds.Faults.of_string part with
                | Ok p -> H.with_fault p acc
                | Error e -> failwith ("--sim-faults: " ^ e))
              spec
              (String.split_on_char ',' s)
      in
      let results =
        H.run_seeds ~progress:(fun _ r -> print_result r) ~seeds:sim.sim_seeds
          spec
      in
      let violating = List.filter H.violating results in
      if sim.sim_shrink then
        List.iter
          (fun (r : H.result) ->
            match H.shrink r.H.r_spec with
            | None ->
                Format.printf "sim seed %d: violation did not reproduce under \
                               shrinking@."
                  r.H.r_spec.H.seed
            | Some (min_spec, kind) ->
                let min_r = H.run min_spec in
                let path = H.write_bundle ~dir:sim.sim_bundle_dir min_r in
                Format.printf
                  "sim seed %d: shrunk %s to %d client(s) x %d request(s), %d \
                   worker(s), %d fault(s)%s%s@."
                  r.H.r_spec.H.seed kind min_spec.H.clients
                  min_spec.H.requests_per_client min_spec.H.workers
                  (List.length min_spec.H.faults)
                  (if min_spec.H.nodes > 0 then
                     Printf.sprintf ", %d node(s), %d node fault(s)"
                       min_spec.H.nodes
                       (List.length min_spec.H.node_faults)
                   else "")
                  (if min_spec.H.vm_warm then ", vm-warm" else "");
                List.iter
                  (fun p ->
                    Format.printf "  fault: %s@." (Dbds.Faults.to_string p))
                  min_spec.H.faults;
                Format.printf "  bundle: %s@." path)
          violating;
      Format.printf "sim: %d seed(s), %d violating@." (List.length results)
        (List.length violating);
      if violating <> [] then raise Sim_violations

let parse_deopt_plan s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let fn = String.sub s 0 i in
      let n = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt n with
      | Some n when fn <> "" && n > 0 -> (fn, n)
      | _ -> failwith "--tiered-deopt expects FN:N with N >= 1")
  | None -> failwith "--tiered-deopt expects FN:N"

let run_compiler file mode passes licm pea_max_rounds print_passes dump dot
    run args stats icache_off jobs inject paranoid bundle_dir no_contain
    replay_bundle profile_runs tiered tiered_runs tiered_deopt svc simopts =
  match
    (match replay_bundle with
    | Some path ->
        replay path;
        raise Exit
    | None -> ());
    let fault_plan =
      match inject with
      | None -> None
      | Some s -> (
          match Dbds.Faults.of_string s with
          | Ok p -> Some p
          | Error msg -> failwith msg)
    in
    let passes =
      match passes with
      | None -> None
      | Some s -> (
          match Opt.Spec.of_string s with
          | Ok spec -> Some spec
          | Error msg -> failwith ("--passes: " ^ msg))
    in
    let config =
      {
        Dbds.Config.default with
        Dbds.Config.mode;
        fault_plan;
        verify_between_phases = paranoid;
        bundle_dir;
        containment = not no_contain;
        passes;
        licm;
        pea_max_rounds = max 0 pea_max_rounds;
      }
    in
    (* Validate the effective pipeline (user-supplied or mode-derived)
       up front, so a typo in --passes is one clear error. *)
    let spec = Dbds.Driver.default_spec config in
    (match Dbds.Driver.validate_spec config spec with
    | Ok () -> ()
    | Error msg -> failwith ("--passes: " ^ msg));
    if print_passes then begin
      (* First line: the canonical form, parseable back through
         --passes (CI round-trips `head -1` of this output).  Then the
         contract table: what each per-function pass preserves and which
         passes its changes can enable. *)
      Format.printf "%s@." (Opt.Spec.to_string spec);
      List.iter
        (fun (name, preserves, enables) ->
          Format.printf "# %-14s preserves=%s enables=%s@." name
            (match preserves with
            | [] -> "-"
            | ks ->
                String.concat ","
                  (List.map Ir.Analyses.kind_to_string ks))
            (match enables with
            | None -> "*"
            | Some [] -> "-"
            | Some ps -> String.concat "," ps))
        (Dbds.Driver.describe_spec config spec);
      raise Exit
    end;
    (match svc.fleet_coord with
    | Some sock ->
        run_coordinator ~sock;
        raise Exit
    | None -> ());
    (match svc.serve with
    | Some sock ->
        run_serve ~sock svc;
        raise Exit
    | None -> ());
    (match svc.connect with
    | Some sock ->
        run_client ~sock ~config ~file svc;
        raise Exit
    | None -> ());
    (match svc.fleet_connect with
    | Some coord ->
        run_fleet_client ~coord ~config ~file svc;
        raise Exit
    | None -> ());
    if simopts.sim || simopts.sim_replay <> None then begin
      run_sim simopts;
      raise Exit
    end;
    let file =
      match file with
      | Some f -> f
      | None -> failwith "a source FILE is required (or --replay-bundle)"
    in
    let src = read_file file in
    let prog = Lang.Frontend.compile src in
    if dump = Dump_before || dump = Dump_both then begin
      Format.printf "=== IR before optimization ===@.";
      Ir.Program.iter_functions prog (fun g ->
          Format.printf "%s@." (Ir.Printer.graph_to_string g))
    end;
    let jobs = if jobs <= 0 then None else Some jobs in
    let icache =
      if icache_off then Interp.Machine.no_icache
      else Interp.Machine.default_icache
    in
    let store =
      Option.map
        (fun dir -> Service.Store.create ~capacity:svc.cache_capacity ~dir ())
        svc.cache_dir
    in
    if tiered then begin
      (* Tiered execution replaces the AOT pipeline entirely: the engine
         interprets, profiles, background-compiles under [config] and
         deoptimizes on its own — warm-starting promotions from the
         artifact store when one is attached. *)
      let deopt_plan = Option.map parse_deopt_plan tiered_deopt in
      run_tiered prog ~config ~jobs ~icache ~args ~runs:tiered_runs ~deopt_plan
        ~stats ~store;
      raise Exit
    end;
    if profile_runs > 0 then begin
      (* One-shot profile-guided compilation: interpret the unoptimized
         program N times recording branch outcomes, rewrite the static
         probabilities from the recording, then optimize as usual. *)
      let profile = Interp.Profile.create () in
      let pargs = Array.of_list args in
      for _ = 1 to profile_runs do
        ignore (Interp.Machine.run ~icache ~profile prog ~args:pargs)
      done;
      Interp.Profile.apply profile prog;
      let branches, samples =
        Interp.Profile.fold profile ~init:(0, 0)
          ~f:(fun (b, s) ~fn:_ ~bid:_ ~taken:_ ~total -> (b + 1, s + total))
      in
      Format.printf
        "profile: %d run(s), %d branch(es), %d sample(s); probabilities \
         applied@."
        profile_runs branches samples
    end;
    if svc.canon then begin
      (* Put each compilation unit in exactly the form a service worker
         would parse off the wire, so direct and service outputs are
         byte-comparable: inline first, then canonicalize ids. *)
      apply_inline prog config;
      canonicalize_program prog
    end;
    let cache =
      Option.map
        (fun s ->
          Service.Store.driver_cache
            ~context:(Service.Digest.context_of_program prog)
            s)
        store
    in
    let report =
      Dbds.Driver.optimize_program_report ~config
        ?inline:(if svc.canon then Some false else None)
        ?jobs ?cache prog
    in
    let ctx = report.Dbds.Driver.rep_ctx
    and per_fn = report.Dbds.Driver.rep_stats in
    print_failures report.Dbds.Driver.rep_failures;
    if dump = Dump_after || dump = Dump_both then begin
      Format.printf "=== IR after %s ===@." (Dbds.Config.mode_to_string mode);
      Ir.Program.iter_functions prog (fun g ->
          Format.printf "%s@." (Ir.Printer.graph_to_string g))
    end;
    if dump = Dump_canon then
      (* Canonical optimized IR only, one graph per function in name
         order — the exact bytes client mode prints, for comparison. *)
      Ir.Program.iter_functions prog (fun g ->
          Format.printf "%s@." (Service.Digest.canonical_of_graph g));
    (match dot with
    | None -> ()
    | Some base ->
        Ir.Program.iter_functions prog (fun g ->
            let path = Printf.sprintf "%s.%s.dot" base (Ir.Graph.name g) in
            Ir.Dot.write_file path g;
            Format.printf "wrote %s@." path));
    if stats then begin
      Format.printf "=== statistics ===@.";
      List.iter
        (fun (name, s) ->
          Format.printf "%-20s %a@." name Dbds.Driver.pp_stats s)
        per_fn;
      (* Per-pass instrumentation: every column except time(s) is
         deterministic for any -j. *)
      (match Opt.Phase.pass_table ctx with
      | [] -> ()
      | table ->
          Format.printf "=== passes ===@.";
          Format.printf "%-14s %6s %6s %10s %9s %8s@." "pass" "runs" "fired"
            "work" "time(s)" "Δsize";
          List.iter
            (fun (name, st) ->
              Format.printf "%-14s %6d %6d %10d %9.4f %8d@." name
                st.Opt.Phase.runs st.Opt.Phase.fired st.Opt.Phase.pwork
                st.Opt.Phase.time_s st.Opt.Phase.size_delta)
            table);
      let hits = ctx.Opt.Phase.analysis_hits
      and misses = ctx.Opt.Phase.analysis_misses in
      if hits + misses > 0 then
        Format.printf "analysis cache: %d hits, %d misses (%.1f%% hit rate)@."
          hits misses
          (100.0 *. float_of_int hits /. float_of_int (hits + misses));
      let size = ref 0 in
      Ir.Program.iter_functions prog (fun g ->
          size := !size + Costmodel.Estimate.graph_size g);
      Format.printf "code size: %d bytes (cost model), compile work: %d units@."
        !size ctx.Opt.Phase.work;
      if ctx.Opt.Phase.contained <> [] then
        Format.printf "contained failures: %d (%s)@."
          (Opt.Phase.contained_total ctx)
          (String.concat ", "
             (List.map
                (fun (site, n) -> Printf.sprintf "%s x%d" site n)
                ctx.Opt.Phase.contained));
      match store with
      | Some s ->
          Format.printf "=== artifact store ===@.%a@." Service.Store.pp_stats
            (Service.Store.stats s)
      | None -> ()
    end;
    if run then begin
      let result, rstats =
        Interp.Machine.run ~icache prog ~args:(Array.of_list args)
      in
      Format.printf "result: %s@." (Interp.Machine.result_to_string result);
      Format.printf
        "cycles: %.1f, instructions: %d, icache: %d hits / %d misses, \
         allocations: %d@."
        rstats.Interp.Machine.cycles rstats.Interp.Machine.instrs_executed
        rstats.Interp.Machine.icache_hits rstats.Interp.Machine.icache_misses
        rstats.Interp.Machine.allocations
    end
  with
  | () -> 0
  | exception Exit -> 0
  | exception Lang.Frontend.Error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | exception Sys_error msg ->
      Format.eprintf "error: %s@." msg;
      1
  | exception Failure msg ->
      Format.eprintf "error: %s@." msg;
      1
  | exception Dbds.Bundle.Malformed msg ->
      Format.eprintf "error: malformed bundle: %s@." msg;
      1
  | exception Ir.Parse.Parse_error msg ->
      Format.eprintf "error: bundle IR: %s@." msg;
      1
  | exception Interp.Machine.Runtime_error msg ->
      Format.eprintf "runtime error: %s@." msg;
      1
  | exception Invalid_argument msg ->
      Format.eprintf "error: %s@." msg;
      1
  | exception Unix.Unix_error (e, fn, arg) ->
      Format.eprintf "error: %s: %s %s@." (Unix.error_message e) fn arg;
      1
  | exception Service.Client.Connect_failed { sock; attempts; elapsed_s; last } ->
      Format.eprintf "error: %s unreachable: %s (%d attempt(s) over %.1fs)@."
        sock
        (Service.Env.net_err_to_string last)
        attempts elapsed_s;
      1
  | exception Service.Env.Net (e, msg) ->
      Format.eprintf "error: %s: %s@." (Service.Env.net_err_to_string e) msg;
      1
  | exception Sim_violations -> 1
  | exception Simtest.Harness.Malformed_bundle msg ->
      Format.eprintf "error: malformed sim bundle: %s@." msg;
      1

let file_arg =
  Arg.(
    value & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:"Source file (required unless $(b,--replay-bundle) is given).")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Dbds.Config.Dbds
    & info [ "m"; "mode"; "tier" ] ~docv:"MODE"
        ~doc:
          "Optimization mode (tier): baseline, dbds, dupalot, backtracking \
           or condelim-dup (greedy conditional elimination through \
           duplication, no trade-off).")

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "passes" ] ~docv:"SPEC"
        ~doc:
          "Run this pipeline instead of the mode-derived default.  SPEC is \
           a comma-separated list of pass names; $(b,fix(...)) iterates its \
           body to a fixpoint; options attach in braces, e.g. \
           $(b,inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),dbds{iters=3}). \
           Passes: the classic names above plus $(b,licm), the opt-in \
           upgrades $(b,copyprop) (optimistic copy propagation) and \
           $(b,lospre) (speculative PRE), the duplication tiers \
           $(b,dbds)/$(b,dupalot) (options $(i,iters), $(i,threshold)), \
           $(b,backtracking) and $(b,condelim_dup) (option $(i,iters)), \
           and program-level $(b,inline) (top level only).")

let licm_arg =
  Arg.(
    value & flag
    & info [ "licm" ]
        ~doc:
          "Include loop-invariant code motion in the default pipeline's \
           fixpoint group.")

let pea_max_rounds_arg =
  Arg.(
    value & opt int 0
    & info [ "pea-max-rounds" ] ~docv:"N"
        ~doc:
          "Cap scalar replacement's internal sweeps at N per invocation \
           (deeply nested allocation chains then leave their remainder to \
           the enclosing fixpoint group).  0 = run to its fixpoint, the \
           historical default.")

let print_passes_arg =
  Arg.(
    value & flag
    & info [ "print-passes" ]
        ~doc:
          "Print the effective pipeline spec in canonical form and exit \
           (accepted back verbatim by $(b,--passes)).")

let dump_conv =
  Arg.enum
    [
      ("none", No_dump);
      ("before", Dump_before);
      ("after", Dump_after);
      ("both", Dump_both);
      ("canon", Dump_canon);
    ]

let dump_arg =
  Arg.(
    value & opt dump_conv No_dump
    & info [ "d"; "dump" ] ~docv:"WHEN"
        ~doc:
          "Dump IR: none, before, after, both, or canon (canonical \
           optimized IR only — the bytes $(b,--connect) prints, for \
           byte-for-byte comparison).")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"BASE"
        ~doc:"Write Graphviz files BASE.<function>.dot after optimization.")

let run_arg =
  Arg.(value & flag & info [ "r"; "run" ] ~doc:"Run main on the interpreter.")

let args_arg =
  Arg.(
    value & opt (list int) []
    & info [ "a"; "args" ] ~docv:"INTS" ~doc:"Comma-separated integer arguments.")

let stats_arg =
  Arg.(value & flag & info [ "s"; "stats" ] ~doc:"Print duplication statistics.")

let no_icache_arg =
  Arg.(value & flag & info [ "no-icache" ] ~doc:"Disable the i-cache model.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Optimize N functions in parallel (0 = one per core; 1 = \
           sequential).  Output is identical for any N.")

let inject_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject" ] ~docv:"PLAN"
        ~env:(Cmd.Env.info "DBDS_FAULTS")
        ~doc:
          "Arm a deterministic fault plan: $(i,site):$(i,hit)[:$(i,fn)] \
           raises at the Nth hit of a named site (sim.opportunity, \
           transform.apply, ssa.repair, parallel.worker, analyses.cache), \
           optionally only inside function $(i,fn); seed:$(i,N) derives a \
           plan from seed N.")

let paranoid_arg =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Verify SSA/CFG invariants after every optimization phase; a \
           violation is contained like a crash and rolls the function back.")

let bundle_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bundle-dir" ] ~docv:"DIR"
        ~doc:
          "Write a replayable crash bundle (pre-attempt IR + config + fault \
           plan) to DIR for every contained failure.")

let no_contain_arg =
  Arg.(
    value & flag
    & info [ "no-contain" ]
        ~doc:
          "Disable crash containment: let optimizer exceptions escape \
           instead of rolling the function back.")

let replay_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay-bundle" ] ~docv:"BUNDLE"
        ~doc:
          "Replay a crash bundle written by $(b,--bundle-dir): re-run the \
           recorded function under the recorded config and fault plan and \
           report whether the failure reproduces.")

let profile_runs_arg =
  Arg.(
    value & opt int 0
    & info [ "profile-runs" ] ~docv:"N"
        ~doc:
          "Profile-guided compilation in one shot: interpret the unoptimized \
           program N times recording branch outcomes, rewrite the static \
           branch probabilities from the recording, then optimize as usual.")

let tiered_arg =
  Arg.(
    value & flag
    & info [ "tiered" ]
        ~doc:
          "Run FILE on the tiered VM instead of AOT-compiling: interpret, \
           profile, background-compile hot functions under the selected \
           mode, deoptimize on failure.  Prints steady-state cycles; with \
           $(b,--stats), promotions, deopts, queue depth and the per-tier \
           cycle split.")

let tiered_runs_arg =
  Arg.(
    value & opt int 8
    & info [ "tiered-runs" ] ~docv:"N"
        ~doc:
          "Number of $(b,--tiered) iterations to run before reporting the \
           (steady-state) last one.")

let tiered_deopt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tiered-deopt" ] ~docv:"FN:N"
        ~doc:
          "Force one deoptimization: the Nth optimized invocation of \
           function FN raises, the engine unwinds its side effects and \
           transparently re-executes in tier 0.")

let serve_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "serve" ] ~docv:"SOCK"
        ~doc:
          "Run as a compilation server on Unix socket SOCK (no FILE \
           needed).  Combine with $(b,--cache-dir) to persist artifacts, \
           $(b,--service-workers) and $(b,--service-queue-limit) to size \
           the broker.  Stops on a client's $(b,--service-shutdown).")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCK"
        ~doc:
          "Compile FILE through the server on SOCK: inline locally, send \
           each function, print the canonical optimized IR (the bytes \
           $(b,--dump canon) prints for a direct run).")

let fleet_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet" ] ~docv:"SOCK"
        ~doc:
          "Run as the fleet membership coordinator on Unix socket SOCK (no \
           FILE needed): track worker joins/leaves/heartbeats, stamp each \
           view change with a new epoch, sweep silent workers as crashed, \
           and push rebalance notices on every change.  Stops on a \
           client's $(b,shutdown).")

let fleet_join_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet-join" ] ~docv:"COORD"
        ~doc:
          "With $(b,--serve): join the fleet coordinated at COORD as a \
           worker — heartbeat, answer the peer store-exchange verbs, and \
           federate the local store's lookup chain through the live \
           membership view (local disk, then the digest's ring owners, \
           then cold compile).  See $(b,--node-id), \
           $(b,--fleet-replicas), $(b,--fleet-beat-ms).")

let fleet_connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet-connect" ] ~docv:"COORD"
        ~doc:
          "Compile FILE through the fleet coordinated at COORD: each \
           function's request is hashed onto the consistent-hash ring and \
           sent to its owner, failing over along the replica successors \
           on node error.  With $(b,--service-stats), prints every \
           node's broker/store statistics (including peer fetches, \
           replication and evictions); with $(b,--service-shutdown), \
           stops every worker and then the coordinator.")

let node_id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "node-id" ] ~docv:"ID"
        ~doc:
          "With $(b,--fleet-join): this worker's ring id (default: the \
           basename of the $(b,--serve) socket).")

let fleet_replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "fleet-replicas" ] ~docv:"N"
        ~doc:
          "With $(b,--fleet-join): push each published artifact to N ring \
           successors, so single-node loss costs no artifacts.")

let fleet_beat_ms_arg =
  Arg.(
    value & opt int 500
    & info [ "fleet-beat-ms" ] ~docv:"MS"
        ~doc:
          "With $(b,--fleet-join): heartbeat period.  The coordinator \
           sweeps a worker as crashed after missing beats for its \
           timeout window.")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Attach the on-disk artifact store at DIR: direct compilations \
           look optimized functions up before running the pipeline and \
           publish afterwards; $(b,--tiered) warm-starts promotions from \
           it and spills background-compile results; $(b,--serve) shares \
           it across clients.")

let cache_capacity_arg =
  Arg.(
    value
    & opt int (8 * 1024 * 1024)
    & info [ "cache-capacity" ] ~docv:"BYTES"
        ~doc:"Artifact-store size budget; LRU entries are evicted past it.")

let canon_arg =
  Arg.(
    value & flag
    & info [ "canon" ]
        ~doc:
          "Canonicalize every function (print → parse round-trip, after \
           inlining) before the per-function pipeline — the exact form a \
           service worker compiles, making direct output byte-comparable \
           with $(b,--connect).")

let deadline_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline for $(b,--connect): requests not picked \
           up by a worker in time report timed-out.")

let service_delay_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "service-delay-ms" ] ~docv:"MS"
        ~doc:
          "Test hook: stretch every real (non-cached) service compile by \
           MS milliseconds — with $(b,--serve), as the broker default; \
           with $(b,--connect), as a per-request header — making request \
           overlap (and therefore coalescing) deterministic.")

let service_stats_arg =
  Arg.(
    value & flag
    & info [ "service-stats" ]
        ~doc:
          "With $(b,--connect): fetch and print the server's broker and \
           store statistics (requests, compiles, coalesced, shed, hits, \
           GC evictions, peer-fetch hits/misses, replication pushes).  \
           With $(b,--fleet-connect): the same, for every node in the \
           membership view.")

let service_shutdown_arg =
  Arg.(
    value & flag
    & info [ "service-shutdown" ]
        ~doc:"With $(b,--connect): ask the server to shut down.")

let service_queue_limit_arg =
  Arg.(
    value & opt int 64
    & info [ "service-queue-limit" ] ~docv:"N"
        ~doc:
          "With $(b,--serve): bound the admission queue at N jobs; \
           requests beyond it are shed (backpressure).")

let service_workers_arg =
  Arg.(
    value & opt int 2
    & info [ "service-workers" ] ~docv:"N"
        ~doc:"With $(b,--serve): number of compile worker domains.")

let frontdoor_arg =
  Arg.(
    value & flag
    & info [ "frontdoor" ]
        ~doc:
          "With $(b,--serve): serve through the async multi-tenant front \
           door — a single-threaded poll-based event loop with per-tenant \
           token-bucket quotas, interactive/batch priority lanes \
           (weighted-deficit round-robin) and optional compact binary \
           framing.  $(b,--service-workers) sizes its dispatcher pool, \
           $(b,--service-queue-limit) bounds each lane, and overload is \
           answered with a structured shed carrying a retry-after-ms \
           hint.  Not combinable with $(b,--fleet-join).")

let tenant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tenant" ] ~docv:"ID"
        ~doc:
          "With $(b,--connect): present this tenant id in the hello — \
           the front door's quota account.  Ignored (gracefully) by a \
           classic server.")

let lane_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lane" ] ~docv:"LANE"
        ~doc:
          "With $(b,--connect): ride this priority lane \
           ($(b,interactive) or $(b,batch), default batch) through a \
           front door's admission queue.")

let binary_arg =
  Arg.(
    value & flag
    & info [ "binary" ]
        ~doc:
          "With $(b,--connect): negotiate the compact binary framing in \
           the hello; the connection switches only when the server \
           confirms, so against a classic server the client degrades to \
           text and keeps working.")

let tenant_rate_arg =
  Arg.(
    value & opt float 50.0
    & info [ "tenant-rate" ] ~docv:"RPS"
        ~doc:
          "With $(b,--frontdoor): per-tenant token refill rate (tokens \
           per second).")

let tenant_burst_arg =
  Arg.(
    value & opt float 100.0
    & info [ "tenant-burst" ] ~docv:"N"
        ~doc:
          "With $(b,--frontdoor): per-tenant token-bucket depth (burst \
           allowance).")

let service_opts_term =
  let make serve connect fleet_coord fleet_join fleet_connect node_id
      fleet_replicas fleet_beat_ms cache_dir cache_capacity canon deadline_ms
      delay_ms svc_stats svc_shutdown queue_limit workers frontdoor tenant
      lane binary tenant_rate tenant_burst =
    {
      serve;
      connect;
      fleet_coord;
      fleet_join;
      fleet_connect;
      node_id;
      fleet_replicas;
      fleet_beat_ms;
      cache_dir;
      cache_capacity;
      canon;
      deadline_ms;
      delay_ms;
      svc_stats;
      svc_shutdown;
      queue_limit;
      workers;
      frontdoor;
      tenant;
      lane;
      binary;
      tenant_rate;
      tenant_burst;
    }
  in
  Term.(
    const make $ serve_arg $ connect_arg $ fleet_arg $ fleet_join_arg
    $ fleet_connect_arg $ node_id_arg $ fleet_replicas_arg $ fleet_beat_ms_arg
    $ cache_dir_arg $ cache_capacity_arg $ canon_arg $ deadline_ms_arg
    $ service_delay_ms_arg $ service_stats_arg $ service_shutdown_arg
    $ service_queue_limit_arg $ service_workers_arg $ frontdoor_arg
    $ tenant_arg $ lane_arg $ binary_arg $ tenant_rate_arg $ tenant_burst_arg)

let sim_arg =
  Arg.(
    value & flag
    & info [ "sim" ]
        ~doc:
          "Run the whole compile service (server, broker workers, clients) \
           inside the deterministic single-threaded simulator: virtual \
           clock, in-memory network and disk, seeded chaos faults.  Every \
           seed must end in byte-identical optimized IR or a clean \
           contained failure; exit 1 on any violation.")

let sim_seed_arg =
  Arg.(
    value & opt int 0
    & info [ "sim-seed" ] ~docv:"SEED"
        ~doc:
          "First schedule seed.  The same seed replays the exact event \
           schedule (compare the printed trace hashes).")

let sim_seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "sim-seeds" ] ~docv:"N"
        ~doc:"Sweep N consecutive seeds starting at $(b,--sim-seed).")

let sim_shrink_arg =
  Arg.(
    value & flag
    & info [ "sim-shrink" ]
        ~doc:
          "Reduce each violating seed to a minimal topology and fault plan \
           (greedy delta-debugging over faults, clients, requests, workers) \
           and write it as a replayable bundle.")

let sim_clients_arg =
  Arg.(
    value & opt int 3
    & info [ "sim-clients" ] ~docv:"N"
        ~doc:"Number of simulated client fibers.")

let sim_chaos_arg =
  Arg.(
    value & opt int 3
    & info [ "sim-chaos" ] ~docv:"N"
        ~doc:
          "Number of seed-derived chaos fault plans per run (message drops, \
           reorders, duplicates, partitions, slow/torn disk IO, clock \
           jumps).  0 disables chaos.")

let sim_vm_warm_arg =
  Arg.(
    value & flag
    & info [ "sim-vm-warm" ]
        ~doc:
          "Also run a tiered VM warm-start against the same simulated \
           artifact store before the clients start.")

let sim_faults_arg =
  Arg.(
    value & opt (some string) None
    & info [ "sim-faults" ] ~docv:"PLANS"
        ~doc:
          "Comma-separated explicit fault plans (same $(b,site:hit[:fn]) \
           grammar as $(b,--inject), e.g. \
           $(b,net.drop:2,store.corrupt:1:main)).  Environment sites arm \
           the simulator; store/pipeline sites travel in the request \
           configuration.")

let sim_replay_arg =
  Arg.(
    value & opt (some string) None
    & info [ "sim-replay" ] ~docv:"BUNDLE"
        ~doc:"Re-run a simulation bundle written by $(b,--sim-shrink).")

let sim_bundle_dir_arg =
  Arg.(
    value & opt string "."
    & info [ "sim-bundle-dir" ] ~docv:"DIR"
        ~doc:"Directory for bundles written by $(b,--sim-shrink).")

let sim_nodes_arg =
  Arg.(
    value & opt int 0
    & info [ "sim-nodes" ] ~docv:"K"
        ~doc:
          "Simulate a fleet of K worker nodes (independent simulated \
           disks) plus a coordinator instead of the classic single \
           server; clients route through the consistent-hash ring.  The \
           invariant extends fleet-wide: byte-identical oracle IR or a \
           clean contained failure on every node, restart scans \
           included.  0 = single server.")

let sim_replicas_arg =
  Arg.(
    value & opt int 1
    & info [ "sim-replicas" ] ~docv:"N"
        ~doc:
          "With $(b,--sim-nodes): artifact copies pushed to ring \
           successors on publish.")

let sim_node_chaos_arg =
  Arg.(
    value & opt int 0
    & info [ "sim-node-chaos" ] ~docv:"N"
        ~doc:
          "With $(b,--sim-nodes): derive N node-level fault events from \
           the seed — kill/rejoin pairs and partition windows timed to \
           land mid-load.")

let sim_node_faults_arg =
  Arg.(
    value & opt (some string) None
    & info [ "sim-node-faults" ] ~docv:"EVENTS"
        ~doc:
          "With $(b,--sim-nodes): explicit node events, comma-separated \
           — $(b,kill:N\\@T) (hard crash of node N at virtual time T, no \
           leave, socket debris left), $(b,rejoin:N\\@T) (restart over \
           the surviving disk), $(b,part:N\\@T1-T2) (two-way partition \
           from T1 to T2).")

let sim_frontdoor_arg =
  Arg.(
    value & flag
    & info [ "sim-frontdoor" ]
        ~doc:
          "With $(b,--sim): serve the simulated service through the \
           async front door instead of the classic server.  Clients \
           spread across tenants, lanes and framings, and two \
           protocol-chaos fibers (a garbage sender and a slow-loris \
           half-request) join the schedule; a garbage line accepted as \
           a request, or a shed without its retry-after hint, is a \
           violation.")

let sim_opts_term =
  let make sim sim_seed sim_seeds sim_shrink sim_clients sim_chaos sim_vm_warm
      sim_faults sim_replay sim_bundle_dir sim_nodes sim_replicas
      sim_node_chaos sim_node_faults sim_frontdoor =
    {
      sim;
      sim_seed;
      sim_seeds;
      sim_shrink;
      sim_clients;
      sim_chaos;
      sim_vm_warm;
      sim_faults;
      sim_replay;
      sim_bundle_dir;
      sim_nodes;
      sim_replicas;
      sim_node_chaos;
      sim_node_faults;
      sim_frontdoor;
    }
  in
  Term.(
    const make $ sim_arg $ sim_seed_arg $ sim_seeds_arg $ sim_shrink_arg
    $ sim_clients_arg $ sim_chaos_arg $ sim_vm_warm_arg $ sim_faults_arg
    $ sim_replay_arg $ sim_bundle_dir_arg $ sim_nodes_arg $ sim_replicas_arg
    $ sim_node_chaos_arg $ sim_node_faults_arg $ sim_frontdoor_arg)

let cmd =
  let doc = "SSA compiler with dominance-based duplication simulation" in
  Cmd.v
    (Cmd.info "dbdsc" ~version:"1.0.0" ~doc)
    Term.(
      const run_compiler $ file_arg $ mode_arg $ passes_arg $ licm_arg
      $ pea_max_rounds_arg $ print_passes_arg $ dump_arg $ dot_arg $ run_arg
      $ args_arg $ stats_arg
      $ no_icache_arg $ jobs_arg $ inject_arg $ paranoid_arg $ bundle_dir_arg
      $ no_contain_arg $ replay_arg $ profile_runs_arg $ tiered_arg
      $ tiered_runs_arg $ tiered_deopt_arg $ service_opts_term
      $ sim_opts_term)

let () =
  Printexc.record_backtrace true;
  exit (Cmd.eval' cmd)
