(** CI bench-smoke: the scaling and identity gates, fast enough to run
    on every push.

    The scaling gate runs over all suites as one batch — the compile
    server's actual workload shape — so no single pathological
    benchmark (fig5's [pmd], an 8 ms function among 0.3 ms peers, caps
    that suite's 2-worker speedup near 1.3x by itself) can flap the
    gate.

    Fails (exit 1) when:
    - the modeled batch speedup at jobs=2 drops below 1.3x — the
      speedup is modeled by replaying measured per-benchmark costs
      through the scheduler's LPT assignment because CI runners are
      frequently single-core (wall-clock "speedup" there measures the
      OS, not the scheduler);
    - the compiled IR stops being byte-identical across jobs values;
    - warm service recompiles stop being byte-identical to cold ones. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let () =
  let benches =
    List.concat_map
      (fun s -> s.Workloads.Suite.benchmarks)
      Workloads.Registry.all
  in
  let config = Dbds.Config.dbds in
  let compile_one (b : Workloads.Suite.benchmark) ~jobs =
    let prog = Workloads.Suite.compile b in
    ignore (Dbds.Driver.optimize_program ~config ~jobs prog);
    prog
  in
  (* Warmup, then measured per-benchmark costs (min of 3). *)
  List.iter (fun b -> ignore (compile_one b ~jobs:1)) benches;
  let cost b =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (compile_one b ~jobs:1);
      let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
      if dt < !best then best := dt
    done;
    !best
  in
  let costs = Array.of_list (List.map cost benches) in
  let makespan, total = Dbds.Parallel.lpt_makespan ~jobs:2 costs in
  let speedup = if makespan > 0.0 then total /. makespan else 1.0 in
  Printf.printf "bench-smoke: %d benchmarks across %d suites, batch %.2f \
                 ms, modeled speedup_vs_jobs1 at jobs=2: %.2fx\n"
    (List.length benches)
    (List.length Workloads.Registry.all)
    (total /. 1e6) speedup;
  if speedup < 1.3 then
    die "speedup_vs_jobs1 %.2f < 1.3 at jobs=2 (scheduler regression)" speedup;
  (* Byte-identity of compiled IR across jobs. *)
  let print_at jobs =
    let buf = Buffer.create 4096 in
    List.iter
      (fun b ->
        let prog = compile_one b ~jobs in
        Ir.Program.iter_functions prog (fun g ->
            Buffer.add_string buf (Ir.Printer.graph_to_string g)))
      benches;
    Buffer.contents buf
  in
  let p1 = print_at 1 in
  if not (String.equal p1 (print_at 2)) then
    die "compiled IR differs between jobs=1 and jobs=2";
  if not (String.equal p1 (print_at 4)) then
    die "compiled IR differs between jobs=1 and jobs=4";
  Printf.printf "bench-smoke: IR byte-identical at jobs 1/2/4\n";
  (* Warm service recompiles must return byte-identical artifacts. *)
  let s = Harness.Servicebench.measure_suite (List.hd Workloads.Registry.all) in
  if not s.Harness.Metrics.sv_identical then
    die "warm service recompile is not byte-identical to the cold compile";
  Printf.printf
    "bench-smoke: service warm pass identical (hit rate %.2f, warm speedup \
     %.2fx)\n"
    s.Harness.Metrics.sv_warm_hit_rate
    (Harness.Metrics.service_speedup s);
  (* Fleet gate: the modeled warm-hit scaling at 3 nodes over all
     suites' digests together (the shard shapes are real ring
     assignments; only the cross-node parallelism is modeled, for the
     same single-core-CI reason as the jobs=2 gate above). *)
  let fleet = Harness.Fleetbench.run ~fleet_sizes:[ 1; 3 ] () in
  let agg = List.nth fleet (List.length fleet - 1) in
  let scale3 = Harness.Metrics.fleet_scaling_at agg 3 in
  Printf.printf
    "bench-smoke: fleet warm-hit scaling at 3 nodes: %.2fx over %d requests \
     (modeled from measured per-request cost)\n"
    scale3 agg.Harness.Metrics.fb_requests;
  if scale3 < 2.0 then
    die "fleet scaling %.2f < 2.0 at 3 nodes (sharding imbalance)" scale3;
  (* Frontdoor overload gate: the sweep runs in the simulator's virtual
     time, so it is deterministic and host-independent.  At 2x offered
     load, admission control must keep goodput near the uncontended
     peak and the interactive lane's p99 within 3x of uncontended —
     shedding the surplus (with retry-after hints) instead of queueing
     it into latency. *)
  (* Workload-lab gates.  (a) The adversarial suites run under every
     tier with agreeing results (Tiercompare raises otherwise) and the
     giant-switch suite shows a positive duplication win — at least one
     duplication tier beats the classic pipeline on total peak cycles.
     (b) The whole lab table is byte-deterministic across jobs. *)
  let lab = Harness.Tiercompare.run ~jobs:1 () in
  let disp_off =
    Harness.Tiercompare.suite_peak lab ~suite:"adv-dispatch" ~tier:"off"
  in
  let winners =
    List.filter
      (fun tier ->
        Harness.Tiercompare.suite_peak lab ~suite:"adv-dispatch" ~tier
        < disp_off)
      Harness.Tiercompare.duplication_tiers
  in
  Printf.printf
    "bench-smoke: lab table %d rows; adv-dispatch duplication winners: %s\n"
    (List.length lab)
    (if winners = [] then "none" else String.concat ", " winners);
  if winners = [] then
    die
      "no duplication tier beats off on the giant-switch suite (off total \
       %.0f cycles)"
      disp_off;
  let fp1 = Harness.Tiercompare.fingerprint ~jobs:1 () in
  let fp2 = Harness.Tiercompare.fingerprint ~jobs:2 () in
  let fp4 = Harness.Tiercompare.fingerprint ~jobs:4 () in
  if not (String.equal fp1 fp2 && String.equal fp1 fp4) then
    die "lab tier_compare fingerprint differs across jobs 1/2/4";
  Printf.printf "bench-smoke: lab tier_compare byte-identical at jobs 1/2/4 \
                 (%s)\n" fp1;
  let fd =
    Harness.Servicebench.load_sweep ~capacity_rps:100.0 ~requests:32
      ~mults:[ 0.5; 1.0; 2.0 ] ()
  in
  if not fd.Harness.Metrics.fd_clean then
    die "frontdoor sweep left an unclean simulated schedule";
  if not fd.Harness.Metrics.fd_identical then
    die "frontdoor sweep served IR differing from the offline oracle";
  List.iter
    (fun (p : Harness.Metrics.frontdoor_point) ->
      if not p.Harness.Metrics.fd_retry_after_ok then
        die "a shed at %.1fx load carried no retry-after hint"
          p.Harness.Metrics.fd_mult)
    fd.Harness.Metrics.fd_points;
  let point m =
    match Harness.Metrics.frontdoor_point_at fd m with
    | Some p -> p
    | None -> die "frontdoor sweep lost its %.1fx point" m
  in
  let uncontended = point 0.5 and at2x = point 2.0 in
  let peak =
    List.fold_left
      (fun acc (p : Harness.Metrics.frontdoor_point) ->
        max acc p.Harness.Metrics.fd_goodput_rps)
      0.0 fd.Harness.Metrics.fd_points
  in
  Printf.printf
    "bench-smoke: frontdoor goodput at 2x: %.1f rps (peak %.1f), \
     interactive p99 %.1f ms (uncontended %.1f ms), %d shed with hints\n"
    at2x.Harness.Metrics.fd_goodput_rps peak
    at2x.Harness.Metrics.fd_p99_ms uncontended.Harness.Metrics.fd_p99_ms
    at2x.Harness.Metrics.fd_shed;
  if at2x.Harness.Metrics.fd_goodput_rps < 0.8 *. peak then
    die "frontdoor goodput at 2x load %.1f < 80%% of peak %.1f (overload \
         collapse)"
      at2x.Harness.Metrics.fd_goodput_rps peak;
  if
    at2x.Harness.Metrics.fd_p99_ms
    > 3.0 *. uncontended.Harness.Metrics.fd_p99_ms
  then
    die "interactive p99 at 2x load %.1f ms > 3x uncontended %.1f ms \
         (admission control not protecting the lane)"
      at2x.Harness.Metrics.fd_p99_ms uncontended.Harness.Metrics.fd_p99_ms;
  print_endline "bench-smoke: OK"
