(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (one group per artifact — see the experiment index
    in DESIGN.md §4) and wraps the compile-time measurements in Bechamel
    so the wall-clock ratios are measured properly (OLS over repeated
    runs), not single-shot.

    Groups:
    - [fig4]     — the node cost model example (§5.3)
    - [fig5..8]  — the four suite tables (peak / compile time / code size
                   for DBDS and dupalot vs baseline)
    - [headline] — the abstract's aggregate numbers
    - [ablation-backtracking] — Algorithm 1 vs DBDS compile effort (§3.1)
    - [ablation-iterations]   — DBDS iteration count sweep (§5.2)
    - [ablation-budget]       — benefit-scale / size-budget sweep (§5.4)
    - [bechamel] — wall-clock compile-time of one representative benchmark
                   per suite under each configuration *)

open Bechamel

let section title = Format.printf "@.=== %s ===@.@." title

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock compile-time measurements                       *)
(* ------------------------------------------------------------------ *)

let compile_test ~suite_tag (b : Workloads.Suite.benchmark) config label =
  Test.make
    ~name:(Printf.sprintf "%s/%s/%s" suite_tag b.Workloads.Suite.name label)
    (Staged.stage (fun () ->
         let prog = Lang.Frontend.compile b.Workloads.Suite.source in
         ignore (Dbds.Driver.optimize_program ~config prog)))

let representative (s : Workloads.Suite.t) =
  List.nth s.Workloads.Suite.benchmarks 0

let bechamel_tests () =
  let tags = [ "fig5"; "fig6"; "fig7"; "fig8" ] in
  let groups =
    List.map2
      (fun tag suite ->
        let b = representative suite in
        Test.make_grouped ~name:tag
          [
            compile_test ~suite_tag:tag b Dbds.Config.off "baseline";
            compile_test ~suite_tag:tag b Dbds.Config.dbds "dbds";
            compile_test ~suite_tag:tag b Dbds.Config.dupalot "dupalot";
          ])
      tags Workloads.Registry.all
  in
  let backtracking_group =
    let b = representative Workloads.Micro.suite in
    Test.make_grouped ~name:"ablation-backtracking"
      [
        compile_test ~suite_tag:"abl" b Dbds.Config.dbds "dbds";
        compile_test ~suite_tag:"abl" b Dbds.Config.backtracking "backtracking";
      ]
  in
  Test.make_grouped ~name:"compile-time" (groups @ [ backtracking_group ])

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols (List.hd instances) raw in
  section "Bechamel: wall-clock compilation time (ns per compile, OLS)";
  Format.printf "%-36s %16s@." "test" "ns/compile";
  (* Collect and sort by name for stable output. *)
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Format.printf "%-36s %16.0f@." name est
      | _ -> Format.printf "%-36s %16s@." name "-")
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  section "Figure 4: node cost model example";
  Format.printf "%a@." Harness.Experiments.pp_figure4
    (Harness.Experiments.figure4 ());
  let summaries = Harness.Experiments.run_all_figures () in
  List.iter
    (fun s ->
      section
        (Printf.sprintf "%s: %s" s.Harness.Report.figure
           s.Harness.Report.suite_name);
      Format.printf "%a@." Harness.Report.pp_suite s)
    summaries;
  section "Headline (paper abstract)";
  Format.printf "%a@." Harness.Report.pp_headline
    (Harness.Report.headline_of summaries);
  section "Ablation: backtracking vs simulation (paper 3.1)";
  Format.printf "%a@." Harness.Experiments.pp_backtracking
    (Harness.Experiments.run_backtracking_ablation ());
  section "Ablation: DBDS iterations (paper 5.2)";
  Format.printf "%a@." Harness.Experiments.pp_iterations
    (Harness.Experiments.run_iteration_ablation ());
  section "Ablation: trade-off constants (paper 5.4)";
  Format.printf "%a@." Harness.Experiments.pp_budget
    (Harness.Experiments.run_budget_ablation ());
  section "Extension: path-based duplication (paper 8)";
  Format.printf "%a@." Harness.Experiments.pp_path_ablation
    (Harness.Experiments.run_path_ablation ());
  run_bechamel ()
