(** The benchmark harness: regenerates every table and figure of the
    paper's evaluation (one group per artifact — see the experiment index
    in DESIGN.md §4) and wraps the compile-time measurements in Bechamel
    so the wall-clock ratios are measured properly (OLS over repeated
    runs), not single-shot.

    Groups:
    - [fig4]     — the node cost model example (§5.3)
    - [fig5..8]  — the four suite tables (peak / compile time / code size
                   for DBDS and dupalot vs baseline)
    - [headline] — the abstract's aggregate numbers
    - [ablation-backtracking] — Algorithm 1 vs DBDS compile effort (§3.1)
    - [ablation-iterations]   — DBDS iteration count sweep (§5.2)
    - [ablation-budget]       — benefit-scale / size-budget sweep (§5.4)
    - [bechamel] — wall-clock compile-time of one representative benchmark
                   per suite under each configuration, sequential
                   ([jobs:1]) and fanned out over all cores ([jobs:N])

    Besides the printed report, the bechamel group is exported to
    [BENCH_results.json]: wall-clock per configuration per suite plus
    the parallel speedup (dbds jobs:1 / dbds jobs:N). *)

open Bechamel

let section title = Format.printf "@.=== %s ===@.@." title

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock compile-time measurements                       *)
(* ------------------------------------------------------------------ *)

let fig_tags = [ "fig5"; "fig6"; "fig7"; "fig8" ]
let jobs_wide = max 2 (Dbds.Parallel.default_jobs ())
let jobs_wide_label = Printf.sprintf "dbds-j%d" jobs_wide

let compile_test ~suite_tag ~jobs (b : Workloads.Suite.benchmark) config label
    =
  Test.make
    ~name:(Printf.sprintf "%s/%s/%s" suite_tag b.Workloads.Suite.name label)
    (Staged.stage (fun () ->
         let prog = Workloads.Suite.compile b in
         ignore (Dbds.Driver.optimize_program ~config ~jobs prog)))

let representative (s : Workloads.Suite.t) =
  List.nth s.Workloads.Suite.benchmarks 0

(* Per-suite configurations: paper configs run sequentially (the
   compile-time ratios of fig5–8 are per-compilation-unit numbers), plus
   the multicore fan-out of the dbds config against its jobs:1 twin. *)
let fig_configs =
  [
    ("baseline", Dbds.Config.off, 1);
    ("dbds-j1", Dbds.Config.dbds, 1);
    (jobs_wide_label, Dbds.Config.dbds, jobs_wide);
    ("dupalot", Dbds.Config.dupalot, 1);
  ]

let bechamel_tests () =
  let groups =
    List.map2
      (fun tag suite ->
        let b = representative suite in
        Test.make_grouped ~name:tag
          (List.map
             (fun (label, config, jobs) ->
               compile_test ~suite_tag:tag ~jobs b config label)
             fig_configs))
      fig_tags Workloads.Registry.all
  in
  let backtracking_group =
    let b = representative Workloads.Micro.suite in
    Test.make_grouped ~name:"ablation-backtracking"
      [
        compile_test ~suite_tag:"abl" ~jobs:1 b Dbds.Config.dbds "dbds";
        compile_test ~suite_tag:"abl" ~jobs:1 b Dbds.Config.backtracking
          "backtracking";
      ]
  in
  Test.make_grouped ~name:"compile-time" (groups @ [ backtracking_group ])

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols (List.hd instances) raw in
  section "Bechamel: wall-clock compilation time (ns per compile, OLS)";
  Format.printf "%-36s %16s@." "test" "ns/compile";
  (* Collect and sort by name for stable output. *)
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows =
    List.filter_map
      (fun (name, ols) ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] ->
            Format.printf "%-36s %16.0f@." name est;
            Some (name, est)
        | _ ->
            Format.printf "%-36s %16s@." name "-";
            None)
      (List.sort compare rows)
  in
  rows

(* ------------------------------------------------------------------ *)
(* Compile hot-path perf: batch scaling, scheduler utilization, GC     *)
(* ------------------------------------------------------------------ *)

(* The per-suite batch view of the compile hot path: every benchmark of
   the suite compiled as one work queue.

   - per-benchmark costs are measured sequentially (min over a few runs,
     the only robust estimator on a noisy host);
   - the jobs=2 / jobs=N speedups are {e modeled} by replaying those
     measured costs through the scheduler's own LPT assignment
     ({!Dbds.Parallel.lpt_makespan}) — the CI container frequently has a
     single core, where a wall-clock "speedup" measures the OS scheduler,
     not ours.  The model uses real measured costs and the real dispatch
     order, and is labeled as a model in the JSON;
   - worker utilization {e is} measured, from the pool's own per-worker
     busy counters during an actual [map_weighted] batch run;
   - GC pressure is the minor/major words delta per compile around the
     sequential batch;
   - byte-identity across jobs is checked on the printed IR of every
     benchmark at jobs 1, 2 and 4. *)
type perf_row = {
  p_tag : string;
  p_benchmarks : int;
  p_total_ns : float;  (** sequential batch total *)
  p_costs : (string * float) list;  (** measured ns per benchmark *)
  p_speedup2 : float;  (** modeled batch speedup at jobs=2 *)
  p_speedup_wide : float;  (** modeled batch speedup at jobs_wide *)
  p_util_wide : float;  (** measured mean worker busy fraction *)
  p_util_workers : int;
  p_minor_words : float;  (** GC minor words per compile *)
  p_major_words : float;  (** GC major words per compile *)
  p_identical : bool;  (** printed IR identical at jobs 1/2/4 *)
}

let perf_rows () =
  let config = Dbds.Config.dbds in
  let compile_one (b : Workloads.Suite.benchmark) =
    let prog = Workloads.Suite.compile b in
    ignore (Dbds.Driver.optimize_program ~config ~jobs:1 prog);
    prog
  in
  List.map2
    (fun tag (suite : Workloads.Suite.t) ->
      let benches = suite.Workloads.Suite.benchmarks in
      (* Warm up allocators and caches. *)
      List.iter (fun b -> ignore (compile_one b)) benches;
      let cost b =
        let best = ref infinity in
        for _ = 1 to 5 do
          let t0 = Unix.gettimeofday () in
          ignore (compile_one b);
          let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
          if dt < !best then best := dt
        done;
        !best
      in
      let costs =
        List.map (fun b -> (b.Workloads.Suite.name, cost b)) benches
      in
      let arr = Array.of_list (List.map snd costs) in
      let mk2, total = Dbds.Parallel.lpt_makespan ~jobs:2 arr in
      let mkw, _ = Dbds.Parallel.lpt_makespan ~jobs:jobs_wide arr in
      (* GC pressure around a sequential batch. *)
      let gc_rounds = 10 in
      let s0 = Gc.quick_stat () in
      for _ = 1 to gc_rounds do
        List.iter (fun b -> ignore (compile_one b)) benches
      done;
      let s1 = Gc.quick_stat () in
      let per_compile = float_of_int (gc_rounds * List.length benches) in
      let minor = (s1.Gc.minor_words -. s0.Gc.minor_words) /. per_compile in
      let major = (s1.Gc.major_words -. s0.Gc.major_words) /. per_compile in
      (* Measured utilization of the size-aware pool over the batch. *)
      let stats = ref None in
      let weight (b : Workloads.Suite.benchmark) =
        int_of_float (List.assoc b.Workloads.Suite.name costs)
      in
      ignore
        (Dbds.Parallel.map_weighted ~stats ~jobs:jobs_wide ~weight compile_one
           benches);
      let util_frac, util_workers =
        match !stats with
        | Some u -> (Dbds.Parallel.utilization u, u.Dbds.Parallel.workers)
        | None -> (0.0, 0)
      in
      (* Byte-identity of the compiled IR across jobs values. *)
      let print_at jobs =
        let buf = Buffer.create 4096 in
        List.iter
          (fun (b : Workloads.Suite.benchmark) ->
            let prog = Workloads.Suite.compile b in
            ignore (Dbds.Driver.optimize_program ~config ~jobs prog);
            Ir.Program.iter_functions prog (fun g ->
                Buffer.add_string buf (Ir.Printer.graph_to_string g)))
          benches;
        Buffer.contents buf
      in
      let p1 = print_at 1 in
      let identical = String.equal p1 (print_at 2) && String.equal p1 (print_at 4) in
      {
        p_tag = tag;
        p_benchmarks = List.length benches;
        p_total_ns = total;
        p_costs = costs;
        p_speedup2 = (if mk2 > 0.0 then total /. mk2 else 1.0);
        p_speedup_wide = (if mkw > 0.0 then total /. mkw else 1.0);
        p_util_wide = util_frac;
        p_util_workers = util_workers;
        p_minor_words = minor;
        p_major_words = major;
        p_identical = identical;
      })
    fig_tags Workloads.Registry.all

let print_perf rows =
  section
    "Compile hot path: batch scaling (modeled from measured costs), \
     utilization, GC";
  Format.printf "%-6s %6s %12s %8s %8s %7s %12s %12s %6s@." "figure" "bench"
    "batch ms" "x(j=2)" "x(wide)" "util" "minor w/c" "major w/c" "ident";
  List.iter
    (fun r ->
      Format.printf "%-6s %6d %12.2f %8.2f %8.2f %6.0f%% %12.0f %12.0f %6b@."
        r.p_tag r.p_benchmarks (r.p_total_ns /. 1e6) r.p_speedup2
        r.p_speedup_wide (100.0 *. r.p_util_wide) r.p_minor_words
        r.p_major_words r.p_identical)
    rows

(* ------------------------------------------------------------------ *)
(* Analysis-cache ablation: preservation contracts vs generation bump  *)
(* ------------------------------------------------------------------ *)

(* Hit rates of the analysis cache under pass preservation contracts
   (a pass that declares an analysis preserved keeps its cached value
   valid across the pass's own mutations) against the historical
   generation-bump mode (any mutation invalidates everything).  The
   work-unit world is deterministic, so one sequential run per suite
   suffices. *)
let analysis_cache_rows () =
  List.map2
    (fun tag (suite : Workloads.Suite.t) ->
      let b = representative suite in
      let measure_with preserve =
        let config =
          { Dbds.Config.dbds with Dbds.Config.preserve_analyses = preserve }
        in
        Harness.Runner.measure ~jobs:1 ~config b
      in
      (tag, suite.Workloads.Suite.suite_name, b.Workloads.Suite.name,
       measure_with true, measure_with false))
    fig_tags Workloads.Registry.all

let print_analysis_cache rows =
  section "Analysis cache: preservation contracts vs generation bump";
  Format.printf "%-6s %-14s | %22s | %22s@." "figure" "benchmark"
    "preserving (hit rate)" "gen-bump (hit rate)";
  List.iter
    (fun (tag, _, bench, pres, bump) ->
      let pp m =
        Printf.sprintf "%4d/%-4d (%5.1f%%)" m.Harness.Metrics.analysis_hits
          (m.Harness.Metrics.analysis_hits + m.Harness.Metrics.analysis_misses)
          (100.0 *. Harness.Metrics.analysis_hit_rate m)
      in
      Format.printf "%-6s %-14s | %22s | %22s@." tag bench (pp pres) (pp bump))
    rows

(* ------------------------------------------------------------------ *)
(* Tiered execution: engine steady state vs interpretation             *)
(* ------------------------------------------------------------------ *)

(* One tiered measurement per suite (its representative benchmark):
   steady-state engine cycles against the tier-0-only control, with the
   AOT configurations for context. *)
let tiered_rows () =
  List.map2
    (fun tag (suite : Workloads.Suite.t) ->
      (tag, suite.Workloads.Suite.suite_name, Harness.Tiered.measure_suite suite))
    fig_tags Workloads.Registry.all

let print_tiered rows =
  section "Tiered execution: steady state vs tier-0 interpretation";
  Format.printf "%a@." Harness.Report.pp_tiered
    (List.map (fun (_, _, r) -> r) rows)

(* ------------------------------------------------------------------ *)
(* Adversarial workload lab: tier comparison                           *)
(* ------------------------------------------------------------------ *)

let tier_rows () = Harness.Tiercompare.run ~jobs:1 ()

let print_tier_compare rows =
  section "Workload lab: adversarial suites under every tier";
  Format.printf "%a@." Harness.Tiercompare.pp rows

(* The lab's determinism probe: the optimized IR of every benchmark
   under every tier, digested, at three jobs values. *)
let tier_fingerprints () =
  ( Harness.Tiercompare.fingerprint ~jobs:1 (),
    Harness.Tiercompare.fingerprint ~jobs:2 (),
    Harness.Tiercompare.fingerprint ~jobs:4 () )

(* ------------------------------------------------------------------ *)
(* Compilation service: cold vs warm artifact store                    *)
(* ------------------------------------------------------------------ *)

(* One row per suite: every benchmark compiled against an empty store,
   then recompiled against the populated one, with the identity check
   on the canonical IR (see Harness.Servicebench). *)
let service_rows () =
  List.map2
    (fun tag (suite : Workloads.Suite.t) ->
      (tag, Harness.Servicebench.measure_suite suite))
    fig_tags Workloads.Registry.all

let print_service rows =
  section "Compilation service: cold vs warm artifact store";
  Format.printf "%a@." Harness.Report.pp_service (List.map snd rows)

(* ------------------------------------------------------------------ *)
(* Fleet: warm-hit throughput at 1..3 nodes                            *)
(* ------------------------------------------------------------------ *)

let fleet_sizes = [ 1; 2; 3 ]
let fleet_replicas = 1

let fleet_rows () =
  Harness.Fleetbench.run ~fleet_sizes ~replicas:fleet_replicas ()

let print_fleet rows =
  section
    "Fleet: warm-hit throughput, 1..3 nodes (measured per-request cost, \
     real ring shards, cross-node parallelism modeled)";
  Format.printf "%a@." Harness.Report.pp_fleet rows

(* ------------------------------------------------------------------ *)
(* Frontdoor: admission-controlled overload sweep                      *)
(* ------------------------------------------------------------------ *)

(* The async front door under open-loop offered load at 0.5x..4x of the
   broker's configured capacity, in the deterministic simulator (virtual
   time, so the numbers are host-independent and reproducible).  The
   acceptance shape: goodput holds near capacity past saturation while
   the surplus is shed with retry-after hints, and the interactive
   lane's p99 stays bounded because sheds happen at admission instead of
   queueing deep (see Harness.Servicebench.load_sweep). *)
let frontdoor_row () = Harness.Servicebench.load_sweep ()

let print_frontdoor row =
  section
    "Frontdoor: open-loop overload sweep (simulated virtual time, \
     0.5x..4x offered load)";
  Format.printf "%a@." Harness.Report.pp_frontdoor row

(* ------------------------------------------------------------------ *)
(* PEA sweep cap: the fig5 8ms-dominant function                       *)
(* ------------------------------------------------------------------ *)

(* The pea_max_rounds knob bounds scalar replacement's internal sweeps;
   measure its effect on the benchmark dominating fig5's batch cost
   (pmd, the 8 ms function among 0.3 ms peers).  Work units are
   deterministic; wall is min-of-5.  The final program must not
   change: a capped PEA leaves its remainder to the enclosing fixpoint
   group, which re-runs it.  The measured answer on pmd is that the
   cap never bites — its sweeps converge within one round, so pmd's
   dominance comes from the DBDS simulation tier, not PEA; the knob
   stays a guardrail for deeper allocation nests (and is digest-stable
   when unset). *)
type pea_variant = {
  pv_max_rounds : int;  (** 0 = fixpoint, the default *)
  pv_wall_ns : float;  (** min-of-5 wall per compile *)
  pv_pea_runs : int;  (** pea invocations across the fixpoint group *)
  pv_pea_work : int;  (** deterministic work charged by pea *)
  pv_compile_work : int;  (** whole-pipeline work units *)
  pv_result : string;  (** workload result, for the identity check *)
  pv_peak_cycles : float;
}

let pea_cap_rows () =
  let fig5 = List.hd Workloads.Registry.all in
  let b =
    match
      List.find_opt
        (fun b -> b.Workloads.Suite.name = "pmd")
        fig5.Workloads.Suite.benchmarks
    with
    | Some b -> b
    | None -> representative fig5
  in
  let variant max_rounds =
    let config =
      { Dbds.Config.dbds with Dbds.Config.pea_max_rounds = max_rounds }
    in
    let m = Harness.Runner.measure ~jobs:1 ~config b in
    let wall =
      let best = ref infinity in
      for _ = 1 to 5 do
        let prog = Workloads.Suite.compile b in
        let t0 = Unix.gettimeofday () in
        ignore (Dbds.Driver.optimize_program ~config ~jobs:1 prog);
        let dt = (Unix.gettimeofday () -. t0) *. 1e9 in
        if dt < !best then best := dt
      done;
      !best
    in
    let pea_runs, pea_work =
      match List.assoc_opt "pea" m.Harness.Metrics.passes with
      | Some st -> (st.Opt.Phase.runs, st.Opt.Phase.pwork)
      | None -> (0, 0)
    in
    {
      pv_max_rounds = max_rounds;
      pv_wall_ns = wall;
      pv_pea_runs = pea_runs;
      pv_pea_work = pea_work;
      pv_compile_work = m.Harness.Metrics.compile_work;
      pv_result = m.Harness.Metrics.result_value;
      pv_peak_cycles = m.Harness.Metrics.peak_cycles;
    }
  in
  (b.Workloads.Suite.name, List.map variant [ 0; 2 ])

let print_pea_cap (bench, variants) =
  section
    (Printf.sprintf
       "PEA sweep cap (pea_max_rounds) on %s, fig5's dominant benchmark"
       bench);
  Format.printf "%-12s %12s %8s %10s %12s %12s@." "max_rounds" "wall ns"
    "pea runs" "pea work" "compile work" "peak cycles";
  List.iter
    (fun v ->
      Format.printf "%-12s %12.0f %8d %10d %12d %12.0f@."
        (if v.pv_max_rounds = 0 then "0 (fixpoint)"
         else string_of_int v.pv_max_rounds)
        v.pv_wall_ns v.pv_pea_runs v.pv_pea_work v.pv_compile_work
        v.pv_peak_cycles)
    variants;
  match variants with
  | base :: rest ->
      List.iter
        (fun v ->
          Format.printf
            "cap %d: wall %+.1f%%, pea work %+d; result %s (%s)@."
            v.pv_max_rounds
            (100.0 *. (v.pv_wall_ns -. base.pv_wall_ns) /. base.pv_wall_ns)
            (v.pv_pea_work - base.pv_pea_work)
            (if
               v.pv_result = base.pv_result
               && v.pv_peak_cycles = base.pv_peak_cycles
             then "unchanged"
             else "CHANGED")
            v.pv_result)
        rest;
      if List.for_all (fun v -> v.pv_pea_work = base.pv_pea_work) rest then
        Format.printf
          "(cap never bites here: each PEA invocation converges within one \
           round — the knob guards deeper allocation nests)@."
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* BENCH_results.json                                                  *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Bechamel prefixes test names with their group path; match on the
   suffix we minted in [compile_test] instead of reconstructing it. *)
let find_ns rows ~tag ~bench ~label =
  let key = Printf.sprintf "%s/%s/%s" tag bench label in
  List.find_map (fun (name, est) -> if contains ~sub:key name then Some est else None) rows

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char buf '\\'; Buffer.add_char buf c
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_results_json path rows cache_rows tiered service perf fleet
    frontdoor (pea_bench, pea_variants) tier_rows (fp1, fp2, fp4) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"cores\": %d,\n" (Dbds.Parallel.default_jobs ()));
  Buffer.add_string buf (Printf.sprintf "  \"jobs_wide\": %d,\n" jobs_wide);
  Buffer.add_string buf "  \"unit\": \"ns_per_compile\",\n";
  Buffer.add_string buf "  \"suites\": [\n";
  let suites =
    List.map2
      (fun tag (suite : Workloads.Suite.t) ->
        let b = representative suite in
        let bench = b.Workloads.Suite.name in
        let configs =
          List.filter_map
            (fun (label, _, _) ->
              Option.map
                (fun ns -> (label, ns))
                (find_ns rows ~tag ~bench ~label))
            fig_configs
        in
        let speedup =
          match
            (List.assoc_opt "dbds-j1" configs, List.assoc_opt jobs_wide_label configs)
          with
          | Some seq, Some par when par > 0.0 -> Some (seq /. par)
          | _ -> None
        in
        let config_fields =
          String.concat ",\n"
            (List.map
               (fun (label, ns) ->
                 Printf.sprintf "        { \"config\": \"%s\", \"ns_per_compile\": %.1f }"
                   (json_escape label) ns)
               configs)
        in
        Printf.sprintf
          "    {\n\
          \      \"figure\": \"%s\",\n\
          \      \"suite\": \"%s\",\n\
          \      \"benchmark\": \"%s\",\n\
          \      \"configs\": [\n%s\n      ],\n\
          \      \"speedup_vs_jobs1\": %s\n\
          \    }"
          (json_escape tag)
          (json_escape suite.Workloads.Suite.suite_name)
          (json_escape bench) config_fields
          (match speedup with
          | Some s -> Printf.sprintf "%.3f" s
          | None -> "null"))
      fig_tags Workloads.Registry.all
  in
  Buffer.add_string buf (String.concat ",\n" suites);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"analysis_cache\": [\n";
  let cache_entries =
    List.map
      (fun (tag, suite_name, bench, pres, bump) ->
        let fields (m : Harness.Metrics.measurement) =
          Printf.sprintf
            "{ \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f }"
            m.Harness.Metrics.analysis_hits m.Harness.Metrics.analysis_misses
            (Harness.Metrics.analysis_hit_rate m)
        in
        Printf.sprintf
          "    {\n\
          \      \"figure\": \"%s\",\n\
          \      \"suite\": \"%s\",\n\
          \      \"benchmark\": \"%s\",\n\
          \      \"preserving\": %s,\n\
          \      \"generation_bump\": %s\n\
          \    }"
          (json_escape tag) (json_escape suite_name) (json_escape bench)
          (fields pres) (fields bump))
      cache_rows
  in
  Buffer.add_string buf (String.concat ",\n" cache_entries);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"tiered\": [\n";
  let tiered_entries =
    List.map
      (fun (tag, suite_name, (r : Harness.Metrics.tiered_row)) ->
        Printf.sprintf
          "    {\n\
          \      \"figure\": \"%s\",\n\
          \      \"suite\": \"%s\",\n\
          \      \"benchmark\": \"%s\",\n\
          \      \"tier0_cycles\": %.1f,\n\
          \      \"first_run_cycles\": %.1f,\n\
          \      \"steady_cycles\": %.1f,\n\
          \      \"speedup_pct\": %.2f,\n\
          \      \"aot_baseline_cycles\": %.1f,\n\
          \      \"aot_dbds_cycles\": %.1f,\n\
          \      \"promotions\": %d,\n\
          \      \"compiles\": %d,\n\
          \      \"deopts\": %d,\n\
          \      \"max_queue_depth\": %d,\n\
          \      \"tier1_share\": %.4f,\n\
          \      \"compile_work\": %d\n\
          \    }"
          (json_escape tag) (json_escape suite_name)
          (json_escape r.Harness.Metrics.t_benchmark)
          r.Harness.Metrics.t_tier0_cycles r.Harness.Metrics.t_first_cycles
          r.Harness.Metrics.t_steady_cycles
          (Harness.Metrics.tiered_speedup r)
          r.Harness.Metrics.t_aot_baseline_cycles
          r.Harness.Metrics.t_aot_dbds_cycles r.Harness.Metrics.t_promotions
          r.Harness.Metrics.t_compiles r.Harness.Metrics.t_deopts
          r.Harness.Metrics.t_max_queue_depth r.Harness.Metrics.t_tier1_share
          r.Harness.Metrics.t_compile_work)
      tiered
  in
  Buffer.add_string buf (String.concat ",\n" tiered_entries);
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"service\": [\n";
  let service_entries =
    List.map
      (fun (tag, (r : Harness.Metrics.service_row)) ->
        Printf.sprintf
          "    {\n\
          \      \"figure\": \"%s\",\n\
          \      \"suite\": \"%s\",\n\
          \      \"programs\": %d,\n\
          \      \"functions\": %d,\n\
          \      \"cold_ns_per_compile\": %.1f,\n\
          \      \"warm_ns_per_compile\": %.1f,\n\
          \      \"warm_speedup\": %.2f,\n\
          \      \"warm_hit_rate\": %.4f,\n\
          \      \"identical_ir\": %b\n\
          \    }"
          (json_escape tag)
          (json_escape r.Harness.Metrics.sv_suite)
          r.Harness.Metrics.sv_programs r.Harness.Metrics.sv_functions
          r.Harness.Metrics.sv_cold_ns r.Harness.Metrics.sv_warm_ns
          (Harness.Metrics.service_speedup r)
          r.Harness.Metrics.sv_warm_hit_rate r.Harness.Metrics.sv_identical)
      service
  in
  Buffer.add_string buf (String.concat ",\n" service_entries);
  Buffer.add_string buf "\n  ],\n";
  (* Fleet: the per-request warm-hit cost is measured on this host; the
     cross-node throughput is modeled over real ring shard shapes, so
     every modeled key carries a _model suffix (perf's precedent). *)
  Buffer.add_string buf "  \"fleet\": {\n";
  Buffer.add_string buf
    "    \"model\": \"ring-sharded warm-hit serving: measured per-request \
     cost, real consistent-hash shard shapes, cross-node parallelism \
     modeled (host may be single-core)\",\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"replicas\": %d,\n" fleet_replicas);
  Buffer.add_string buf "    \"rows\": [\n";
  let fleet_entries =
    List.map
      (fun (r : Harness.Metrics.fleet_row) ->
        let points =
          String.concat ",\n"
            (List.map
               (fun (p : Harness.Metrics.fleet_point) ->
                 Printf.sprintf
                   "          { \"nodes\": %d, \"max_share\": %.4f, \
                    \"throughput_rps_model\": %.1f, \
                    \"scaling_vs_1node_model\": %.3f }"
                   p.Harness.Metrics.fp_nodes p.Harness.Metrics.fp_max_share
                   p.Harness.Metrics.fp_throughput_rps
                   p.Harness.Metrics.fp_scaling)
               r.Harness.Metrics.fb_points)
        in
        Printf.sprintf
          "      {\n\
          \        \"suite\": \"%s\",\n\
          \        \"requests\": %d,\n\
          \        \"warm_hit_ns_measured\": %.1f,\n\
          \        \"points\": [\n%s\n        ]\n\
          \      }"
          (json_escape r.Harness.Metrics.fb_suite)
          r.Harness.Metrics.fb_requests r.Harness.Metrics.fb_warm_hit_ns
          points)
      fleet
  in
  Buffer.add_string buf (String.concat ",\n" fleet_entries);
  Buffer.add_string buf "\n    ]\n  },\n";
  (* Frontdoor: the overload sweep runs entirely in the simulator's
     virtual time, so goodput and latency are host-independent. *)
  let fd = (frontdoor : Harness.Metrics.frontdoor_row) in
  Buffer.add_string buf "  \"frontdoor\": {\n";
  Buffer.add_string buf
    "    \"model\": \"open-loop offered load against the async front \
     door in the deterministic simulator (virtual time); latencies are \
     interactive-lane client-observed\",\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"capacity_rps\": %.1f,\n"
       fd.Harness.Metrics.fd_capacity_rps);
  Buffer.add_string buf
    (Printf.sprintf "    \"tenants\": %d,\n" fd.Harness.Metrics.fd_tenants);
  Buffer.add_string buf
    (Printf.sprintf "    \"requests_per_point\": %d,\n"
       fd.Harness.Metrics.fd_requests);
  Buffer.add_string buf
    (Printf.sprintf "    \"identical_ir\": %b,\n"
       fd.Harness.Metrics.fd_identical);
  Buffer.add_string buf
    (Printf.sprintf "    \"clean_schedules\": %b,\n"
       fd.Harness.Metrics.fd_clean);
  Buffer.add_string buf "    \"points\": [\n";
  let fd_entries =
    List.map
      (fun (p : Harness.Metrics.frontdoor_point) ->
        Printf.sprintf
          "      { \"load_mult\": %.2f, \"offered_rps\": %.1f, \"sent\": \
           %d, \"done\": %d, \"shed\": %d, \"failed\": %d, \
           \"goodput_rps\": %.2f, \"interactive_p50_ms\": %.2f, \
           \"interactive_p95_ms\": %.2f, \"interactive_p99_ms\": %.2f, \
           \"retry_after_ok\": %b }"
          p.Harness.Metrics.fd_mult p.Harness.Metrics.fd_offered_rps
          p.Harness.Metrics.fd_sent p.Harness.Metrics.fd_done
          p.Harness.Metrics.fd_shed p.Harness.Metrics.fd_failed
          p.Harness.Metrics.fd_goodput_rps p.Harness.Metrics.fd_p50_ms
          p.Harness.Metrics.fd_p95_ms p.Harness.Metrics.fd_p99_ms
          p.Harness.Metrics.fd_retry_after_ok)
      fd.Harness.Metrics.fd_points
  in
  Buffer.add_string buf (String.concat ",\n" fd_entries);
  Buffer.add_string buf "\n    ]\n  },\n";
  (* PEA sweep cap on fig5's dominant benchmark: deterministic work
     units plus min-of-5 wall per variant. *)
  Buffer.add_string buf "  \"pea_cap\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"benchmark\": \"%s\",\n" (json_escape pea_bench));
  Buffer.add_string buf
    "    \"note\": \"pea_max_rounds bounds scalar replacement's internal \
     sweeps; a capped chain leaves its remainder to the enclosing \
     fixpoint group, so the final IR and workload result are unchanged. \
     On this benchmark the cap never bites: every PEA invocation \
     converges within one round (identical pea_work at any cap), so its \
     fig5 dominance comes from the DBDS simulation tier, not PEA — the \
     knob is a guardrail for deeper allocation nests\",\n";
  Buffer.add_string buf "    \"variants\": [\n";
  let pea_entries =
    List.map
      (fun v ->
        Printf.sprintf
          "      { \"max_rounds\": %d, \"wall_ns\": %.0f, \"pea_runs\": %d, \
           \"pea_work\": %d, \"compile_work\": %d, \"peak_cycles\": %.1f, \
           \"result\": \"%s\" }"
          v.pv_max_rounds v.pv_wall_ns v.pv_pea_runs v.pv_pea_work
          v.pv_compile_work v.pv_peak_cycles (json_escape v.pv_result))
      pea_variants
  in
  Buffer.add_string buf (String.concat ",\n" pea_entries);
  Buffer.add_string buf "\n    ]\n  },\n";
  (* Adversarial workload lab: every benchmark under every tier. *)
  Buffer.add_string buf "  \"adversarial\": [\n";
  let tier_entries =
    List.map
      (fun (r : Harness.Metrics.tier_row) ->
        let cells =
          String.concat ",\n"
            (List.map
               (fun (c : Harness.Metrics.tier_cell) ->
                 Printf.sprintf
                   "        { \"tier\": \"%s\", \"peak_cycles\": %.1f, \
                    \"code_size\": %d, \"compile_work\": %d, \"decisions\": \
                    %d }"
                   (json_escape c.Harness.Metrics.tc_tier)
                   c.Harness.Metrics.tc_peak_cycles
                   c.Harness.Metrics.tc_code_size
                   c.Harness.Metrics.tc_compile_work
                   c.Harness.Metrics.tc_decisions)
               r.Harness.Metrics.tc_cells)
        in
        Printf.sprintf
          "    {\n\
          \      \"suite\": \"%s\",\n\
          \      \"benchmark\": \"%s\",\n\
          \      \"tiers\": [\n%s\n      ]\n\
          \    }"
          (json_escape r.Harness.Metrics.tc_suite)
          (json_escape r.Harness.Metrics.tc_benchmark)
          cells)
      tier_rows
  in
  Buffer.add_string buf (String.concat ",\n" tier_entries);
  Buffer.add_string buf "\n  ],\n";
  (* Cross-jobs byte-determinism of the whole lab table. *)
  Buffer.add_string buf "  \"tier_compare\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"fingerprint_jobs1\": \"%s\",\n\
       \    \"fingerprint_jobs2\": \"%s\",\n\
       \    \"fingerprint_jobs4\": \"%s\",\n\
       \    \"byte_identical\": %b\n"
       fp1 fp2 fp4
       (String.equal fp1 fp2 && String.equal fp1 fp4));
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"perf\": [\n";
  let perf_entries =
    List.map
      (fun r ->
        let costs =
          String.concat ",\n"
            (List.map
               (fun (name, ns) ->
                 Printf.sprintf
                   "        { \"benchmark\": \"%s\", \"ns\": %.0f }"
                   (json_escape name) ns)
               r.p_costs)
        in
        Printf.sprintf
          "    {\n\
          \      \"figure\": \"%s\",\n\
          \      \"benchmarks\": %d,\n\
          \      \"batch_ns_sequential\": %.0f,\n\
          \      \"per_benchmark_ns\": [\n%s\n      ],\n\
          \      \"speedup_model\": \"lpt_makespan over measured \
           per-benchmark costs (host may be single-core; utilization is \
           measured)\",\n\
          \      \"speedup_vs_jobs1\": { \"jobs_2\": %.3f, \"jobs_%d\": \
           %.3f },\n\
          \      \"scheduler_utilization\": { \"workers\": %d, \
           \"mean_busy_fraction\": %.4f },\n\
          \      \"gc_per_compile\": { \"minor_words\": %.0f, \
           \"major_words\": %.0f },\n\
          \      \"identical_ir_across_jobs\": %b\n\
          \    }"
          (json_escape r.p_tag) r.p_benchmarks r.p_total_ns costs r.p_speedup2
          jobs_wide r.p_speedup_wide r.p_util_workers r.p_util_wide
          r.p_minor_words r.p_major_words r.p_identical)
      perf
  in
  Buffer.add_string buf (String.concat ",\n" perf_entries);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "@.wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  section "Figure 4: node cost model example";
  Format.printf "%a@." Harness.Experiments.pp_figure4
    (Harness.Experiments.figure4 ());
  let summaries = Harness.Experiments.run_all_figures () in
  List.iter
    (fun s ->
      section
        (Printf.sprintf "%s: %s" s.Harness.Report.figure
           s.Harness.Report.suite_name);
      Format.printf "%a@." Harness.Report.pp_suite s)
    summaries;
  section "Headline (paper abstract)";
  Format.printf "%a@." Harness.Report.pp_headline
    (Harness.Report.headline_of summaries);
  section "Ablation: backtracking vs simulation (paper 3.1)";
  Format.printf "%a@." Harness.Experiments.pp_backtracking
    (Harness.Experiments.run_backtracking_ablation ());
  section "Ablation: DBDS iterations (paper 5.2)";
  Format.printf "%a@." Harness.Experiments.pp_iterations
    (Harness.Experiments.run_iteration_ablation ());
  section "Ablation: trade-off constants (paper 5.4)";
  Format.printf "%a@." Harness.Experiments.pp_budget
    (Harness.Experiments.run_budget_ablation ());
  section "Extension: path-based duplication (paper 8)";
  Format.printf "%a@." Harness.Experiments.pp_path_ablation
    (Harness.Experiments.run_path_ablation ());
  let cache_rows = analysis_cache_rows () in
  print_analysis_cache cache_rows;
  let tiered = tiered_rows () in
  print_tiered tiered;
  let service = service_rows () in
  print_service service;
  let fleet = fleet_rows () in
  print_fleet fleet;
  let frontdoor = frontdoor_row () in
  print_frontdoor frontdoor;
  let pea_cap = pea_cap_rows () in
  print_pea_cap pea_cap;
  let lab = tier_rows () in
  print_tier_compare lab;
  let fps = tier_fingerprints () in
  let perf = perf_rows () in
  print_perf perf;
  let rows = run_bechamel () in
  write_results_json "BENCH_results.json" rows cache_rows tiered service perf
    fleet frontdoor pea_cap lab fps
