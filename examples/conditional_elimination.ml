(** The paper's Listings 1 and 2: conditional elimination enabled by
    duplication.

    In [foo], after the first merge [p] is [phi(i, 13)]; the condition
    [p > 12] cannot be decided.  Duplicating the second-if block into the
    predecessors substitutes [p]: on the else path [13 > 12] folds to
    true, and on the then path the dominating fact [i > 0] keeps the
    condition (exactly Listing 2's residual program).

    Run with: [dune exec examples/conditional_elimination.exe] *)

let source =
  {|
  int foo(int i) {
    int p;
    if (i > 0) { p = i; } else { p = 13; }
    if (p > 12) { return 12; }
    return i;
  }
  int main(int i) { return foo(i); }
  |}

let () =
  let prog = Lang.Frontend.compile source in
  let g = Option.get (Ir.Program.find_function prog "foo") in
  Format.printf "=== Listing 1 ===@.%s@." (Ir.Printer.graph_to_string g);

  let ctx = Opt.Phase.create ~program:prog () in
  let candidates = Dbds.Simulation.simulate ctx Dbds.Config.default g in
  Format.printf "=== simulation results ===@.";
  List.iter (fun c -> Format.printf "  %a@." Dbds.Candidate.pp c) candidates;

  let _ = Dbds.Driver.optimize_graph ctx g in
  Format.printf "@.=== after DBDS (Listing 2's shape) ===@.%s@."
    (Ir.Printer.graph_to_string g);

  List.iter
    (fun i ->
      let result, _ = Interp.Machine.run prog ~args:[| i |] in
      Format.printf "foo(%d) = %s@." i (Interp.Machine.result_to_string result))
    [ 14; 5; 0; -3 ]
