(** The paper's Figure 3 walkthrough: strength reduction of [x / phi]
    discovered by duplication simulation.

    Program f:  if (a > b) { phi = x; } else { phi = 2; }  return x / phi;

    The simulation tier binds phi to 2 along the false predecessor; the
    strength-reduction applicability check rewrites the division into a
    shift and reports 32 - 1 = 31 cycles saved — the exact numbers of the
    paper's Figure 3d.

    Run with: [dune exec examples/constant_folding.exe] *)

let source =
  {|
  int f(int a, int b, int x) {
    int phi;
    if (a > b) { phi = x; } else { phi = 2; }
    return x / phi;
  }
  int main(int a, int b, int x) { return f(a, b, x); }
  |}

let () =
  let prog = Lang.Frontend.compile source in
  let g = Option.get (Ir.Program.find_function prog "f") in
  Format.printf "=== program f (Figure 3a) ===@.%s@."
    (Ir.Printer.graph_to_string g);

  let ctx = Opt.Phase.create ~program:prog () in
  let candidates = Dbds.Simulation.simulate ctx Dbds.Config.default g in
  Format.printf "=== simulation results ===@.";
  List.iter (fun c -> Format.printf "  %a@." Dbds.Candidate.pp c) candidates;
  Format.printf
    "(the false-branch candidate saves ~31 cycles: division 32, shift 1)@.";

  let _ = Dbds.Driver.optimize_graph ctx g in
  Format.printf "@.=== after duplication (Figure 3e) ===@.%s@."
    (Ir.Printer.graph_to_string g);

  (* Check semantics on both paths: a>b takes the division by x, the
     other path takes the shift. *)
  List.iter
    (fun (a, b, x) ->
      let result, _ = Interp.Machine.run prog ~args:[| a; b; x |] in
      Format.printf "f(%d, %d, %d) = %s@." a b x
        (Interp.Machine.result_to_string result))
    [ (3, 1, 10); (1, 3, 10); (1, 3, -9) ]
