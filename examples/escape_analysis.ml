(** The paper's Listings 3 and 4: partial escape analysis enabled by
    duplication.

    The allocation [new A(0)] escapes only through the phi at the merge.
    Duplicating the merge block into the null-branch predecessor makes the
    allocation local to that path; scalar replacement then deletes it and
    the field read becomes the constant 0 — Listing 4's residual program.

    Run with: [dune exec examples/escape_analysis.exe] *)

let source =
  {|
  class A { int x; }
  int foo(A a) {
    A p;
    if (a == null) { p = new A(0); } else { p = a; }
    return p.x;
  }
  int main(int k) {
    if (k > 0) { return foo(new A(k)); }
    return foo(null);
  }
  |}

let count_allocations g =
  Ir.Graph.fold_instrs g
    (fun n id ->
      match Ir.Graph.kind g id with Ir.Types.New _ -> n + 1 | _ -> n)
    0

let () =
  let prog = Lang.Frontend.compile source in
  let g = Option.get (Ir.Program.find_function prog "foo") in
  Format.printf "=== Listing 3 ===@.%s@." (Ir.Printer.graph_to_string g);
  Format.printf "allocations in foo before: %d@." (count_allocations g);

  (* The allocation escapes only through the phi — the exact situation
     the PEA applicability check looks for. *)
  let alloc =
    Ir.Graph.fold_instrs g
      (fun acc id ->
        match Ir.Graph.kind g id with
        | Ir.Types.New _ -> Some id
        | _ -> acc)
      None
    |> Option.get
  in
  (match Opt.Pea.escape_state g alloc with
  | Opt.Pea.Through_phi_only -> Format.printf "escape state: through phi only@."
  | Opt.Pea.No_escape -> Format.printf "escape state: no escape@."
  | Opt.Pea.Escapes -> Format.printf "escape state: escapes@.");

  let ctx = Opt.Phase.create ~program:prog () in
  let stats = Dbds.Driver.optimize_graph ctx g in
  Format.printf "@.=== after DBDS (%a) ===@.%s@." Dbds.Driver.pp_stats stats
    (Ir.Printer.graph_to_string g);
  Format.printf "allocations in foo after: %d@." (count_allocations g);

  (* Behaviour preserved, and the null path allocates nothing at all. *)
  List.iter
    (fun k ->
      let result, rstats = Interp.Machine.run prog ~args:[| k |] in
      Format.printf "main(%d) = %s  (allocations at run time: %d)@." k
        (Interp.Machine.result_to_string result)
        rstats.Interp.Machine.allocations)
    [ 7; 0 ]
