(** End-to-end pipeline on a real workload: compile one of the Octane
    suite's sources through the frontend, optimize under all three
    configurations, and compare the three metrics of the paper's
    evaluation — peak cycles (with the i-cache model), code size and
    compile work.

    Run with: [dune exec examples/pipeline.exe] — optionally pass a
    benchmark name, e.g. [dune exec examples/pipeline.exe -- raytrace] *)

let find_benchmark name =
  List.concat_map
    (fun s -> s.Workloads.Suite.benchmarks)
    Workloads.Registry.all
  |> List.find_opt (fun b -> b.Workloads.Suite.name = name)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "jython" in
  match find_benchmark name with
  | None ->
      Format.printf "unknown benchmark %s; available:@." name;
      List.iter
        (fun s ->
          Format.printf "  %s: %s@." s.Workloads.Suite.suite_name
            (String.concat ", "
               (List.map
                  (fun b -> b.Workloads.Suite.name)
                  s.Workloads.Suite.benchmarks)))
        Workloads.Registry.all;
      exit 1
  | Some b ->
      Format.printf "benchmark %s: %s@.@." b.Workloads.Suite.name
        b.Workloads.Suite.description;
      let configs =
        [
          ("baseline", Dbds.Config.off);
          ("dbds", Dbds.Config.dbds);
          ("dupalot", Dbds.Config.dupalot);
        ]
      in
      Format.printf "%-10s %14s %12s %14s %14s@." "config" "peak cycles"
        "code size" "compile work" "duplications";
      let baseline_cycles = ref 0.0 in
      List.iter
        (fun (label, config) ->
          let m = Harness.Runner.measure ~config b in
          if label = "baseline" then baseline_cycles := m.Harness.Metrics.peak_cycles;
          Format.printf "%-10s %14.0f %12d %14d %14d   (peak %+.2f%%)@." label
            m.Harness.Metrics.peak_cycles m.Harness.Metrics.code_size
            m.Harness.Metrics.compile_work m.Harness.Metrics.duplications
            ((!baseline_cycles /. m.Harness.Metrics.peak_cycles -. 1.0) *. 100.))
        configs
