(** Quickstart: build the paper's Figure 1 program directly with the IR
    builder API, run DBDS on it, and watch constant folding fire on the
    duplicated path.

    Run with: [dune exec examples/quickstart.exe] *)

open Ir.Types
module B = Ir.Builder
module G = Ir.Graph

let () =
  (* int foo(int x) { int phi; if (x > 0) phi = x; else phi = 0;
                      return 2 + phi; } *)
  let b = B.create ~name:"foo" ~n_params:1 () in
  let x = B.param b 0 in
  let zero = B.const b 0 in
  let cond = B.cmp b Gt x zero in
  let bt = B.new_block b in
  let bf = B.new_block b in
  let merge = B.new_block b in
  B.branch b cond ~if_true:bt ~if_false:bf;
  B.switch b bt;
  B.jump b merge;
  B.switch b bf;
  B.jump b merge;
  let phi = B.phi b merge [ x; zero ] in
  B.switch b merge;
  let two = B.const b 2 in
  let sum = B.binop b Add two phi in
  B.ret b sum;
  let g = B.finish b in

  Format.printf "=== Figure 1: before ===@.%s@." (Ir.Printer.graph_to_string g);

  (* Simulate: the false predecessor (phi = 0) enables folding 2 + 0. *)
  let prog = Ir.Program.of_graph g in
  let ctx = Opt.Phase.create ~program:prog () in
  let candidates = Dbds.Simulation.simulate ctx Dbds.Config.default g in
  Format.printf "=== simulation tier found %d candidate(s) ===@."
    (List.length candidates);
  List.iter (fun c -> Format.printf "  %a@." Dbds.Candidate.pp c) candidates;

  (* Full DBDS: simulate -> trade-off -> optimize. *)
  let stats = Dbds.Driver.optimize_graph ctx g in
  Format.printf "@.=== after DBDS (%a) ===@.%s@." Dbds.Driver.pp_stats stats
    (Ir.Printer.graph_to_string g);

  (* The optimized program still computes the same function. *)
  List.iter
    (fun n ->
      let result, _ = Interp.Machine.run_graph g ~args:[| n |] in
      Format.printf "foo(%d) = %s@." n (Interp.Machine.result_to_string result))
    [ 5; -3; 0 ]
