(** Tiered execution: interpret with profiling, feed the observed branch
    frequencies back into the IR, then compile with DBDS — the flow of a
    real tiered VM (the paper's probabilities come from HotSpot's
    interpreter profiles, §5.3).

    The program has no [@prob] annotations at all; the profile makes the
    idle-task dispatch hot enough for the trade-off tier to duplicate.

    Run with: [dune exec examples/profile_guided.exe] *)

let source =
  {|
  class Task { int kind; int work; }
  global int scheduled;
  int main(int n) {
    int seed = 47;
    int acc = 0;
    int i = 0;
    while (i < n) {
      seed = (seed * 139 + 61) & 32767;
      Task t;
      if ((seed >> 6) % 8 < 6) { t = new Task(0, 1); } else { t = new Task(seed % 3 + 1, seed & 31); }
      int k = t.kind;
      int r;
      if (k == 0) { r = t.work; } else { r = t.work * k + 2; }
      acc = (acc + r) & 16777215;
      scheduled = scheduled + 1;
      i = i + 1;
    }
    return acc + scheduled;
  }
  |}

let () =
  (* Tier 1: interpret with a profile attached (the warmup runs). *)
  let prog = Lang.Frontend.compile source in
  let profile = Interp.Profile.create () in
  let warmup_result, _ =
    Interp.Machine.run ~profile prog ~args:[| 2000 |]
  in
  Format.printf "tier 1 (interpreter): result %s, %d branch samples@."
    (Interp.Machine.result_to_string warmup_result)
    (Interp.Profile.samples profile);

  (* Feed the observed frequencies back into the IR. *)
  Interp.Profile.apply profile prog;
  let g = Option.get (Ir.Program.find_function prog "main") in
  Format.printf "@.observed branch probabilities:@.";
  Ir.Graph.iter_blocks g (fun bid ->
      match Ir.Graph.term g bid with
      | Ir.Types.Branch { prob; _ } ->
          Format.printf "  b%d: %.3f@." bid prob
      | _ -> ());

  (* Tier 2: compile with DBDS using the real profile. *)
  let ctx = Opt.Phase.create ~program:prog () in
  let stats = Dbds.Driver.optimize_graph ctx g in
  Format.printf "@.tier 2 (DBDS): %a@." Dbds.Driver.pp_stats stats;

  let compiled_result, run_stats = Interp.Machine.run prog ~args:[| 2000 |] in
  Format.printf
    "compiled: result %s (matches: %b), %d allocations at run time@."
    (Interp.Machine.result_to_string compiled_result)
    (compiled_result = warmup_result)
    run_stats.Interp.Machine.allocations;
  if stats.Dbds.Driver.duplications_performed > 0 then
    Format.printf
      "the profiled hot dispatch was duplicated and its task record \
       scalar-replaced.@."
