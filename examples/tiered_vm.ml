(** The tiered VM end to end: interpret, profile, background-compile,
    deoptimize.

    A {!Vm.Engine} starts every function in tier 0 (the profiled
    interpreter).  Invocation and backedge counters promote hot
    functions to a compile queue; background workers run the DBDS
    pipeline on a profile-specialized copy and install the result in a
    versioned code cache.  Subsequent runs execute optimized bodies —
    until a forced deoptimization shows the safety net: the optimized
    frame's side effects are unwound and the call transparently
    re-executes in tier 0, byte-identical to a never-compiled run.

    Run with: [dune exec examples/tiered_vm.exe] *)

let source =
  {|
  global int acc;
  int work(int n) {
    int s = 0;
    int i = 0;
    while (i < n) {
      if (i % 3 == 0) { s = s + i * 2; } else { s = s - 1; }
      i = i + 1;
    }
    acc = acc + s;
    return s;
  }
  int main(int n) {
    int r = 0;
    int k = 0;
    while (k < 16) {
      r = work(n + (k % 4));
      k = k + 1;
    }
    return r;
  }
  |}

let () =
  let prog = Lang.Frontend.compile source in
  (* Promote eagerly so the demo reaches steady state in a few runs;
     force one deoptimization of [work] on its 5th optimized call. *)
  let policy =
    {
      Vm.Policy.default with
      Vm.Policy.invocation_threshold = 2;
      backedge_threshold = 32;
      profile_period = 8;
    }
  in
  let config = Vm.Engine.config ~policy ~deopt_plan:("work", 5) () in
  let eng = Vm.Engine.create ~config prog in
  for i = 1 to 6 do
    let result, stats = Vm.Engine.run eng ~args:[| 40 |] in
    Format.printf "run %d: result %s, %.0f cycles@." i
      (Interp.Machine.result_to_string result)
      stats.Interp.Machine.cycles
  done;
  let vs = Vm.Engine.finish eng in
  Format.printf "@.%a@." Vm.Vmstats.pp vs;
  Format.printf "@.code cache:@.";
  List.iter
    (fun (e : Vm.Codecache.entry) ->
      Format.printf "  %s v%d (size %d, %d hits)@." e.Vm.Codecache.ce_fn
        e.Vm.Codecache.ce_version e.Vm.Codecache.ce_size e.Vm.Codecache.ce_hits)
    (Vm.Codecache.entries (Vm.Engine.cache eng));
  List.iter
    (fun e -> Format.printf "@.%a — and the run still matched tier 0@." Vm.Deopt.pp_event e)
    (Vm.Engine.deopt_log eng);
  (* The whole point: every run above is indistinguishable from a
     never-compiled interpretation. *)
  let expect, _ = Interp.Machine.run (Lang.Frontend.compile source) ~args:[| 40 |] in
  Format.printf "@.tier-0 reference result: %s@."
    (Interp.Machine.result_to_string expect)
