(** The paper's Listings 5 and 6: read elimination enabled by duplication.

    [Read2] ([return a.x]) is only {e partially} redundant: it repeats
    [Read1] on the then-path but not on the else-path, so baseline read
    elimination cannot touch it.  Duplicating the return block promotes it
    to fully redundant on the hot path — Listing 6's residual program.

    Run with: [dune exec examples/read_elimination.exe] *)

let source =
  {|
  class A { int x; }
  global int s;
  global A cache;
  int foo(A a, int i) {
    if (i > 0) @0.9 { s = a.x; } else { s = 0; }
    return a.x;
  }
  int main(int i) {
    A a = new A(41);
    cache = a;  /* the object escapes: scalar replacement cannot elide it */
    return foo(a, i);
  }
  |}

let count_loads g =
  Ir.Graph.fold_instrs g
    (fun n id ->
      match Ir.Graph.kind g id with Ir.Types.Load _ -> n + 1 | _ -> n)
    0

let dynamic_instrs prog i =
  let _, stats =
    Interp.Machine.run ~icache:Interp.Machine.no_icache prog ~args:[| i |]
  in
  stats.Interp.Machine.instrs_executed

let () =
  let prog = Lang.Frontend.compile source in
  let baseline = Ir.Program.copy prog in
  let _ = Dbds.Driver.optimize_program ~config:Dbds.Config.off baseline in

  let g = Option.get (Ir.Program.find_function prog "foo") in
  Format.printf "=== Listing 5 ===@.%s@." (Ir.Printer.graph_to_string g);

  let ctx = Opt.Phase.create ~program:prog () in
  let candidates = Dbds.Simulation.simulate ctx Dbds.Config.default g in
  Format.printf "=== simulation results ===@.";
  List.iter (fun c -> Format.printf "  %a@." Dbds.Candidate.pp c) candidates;

  let _ = Dbds.Driver.optimize_program prog in
  let g = Option.get (Ir.Program.find_function prog "foo") in
  Format.printf "@.=== after DBDS (Listing 6's shape) ===@.%s@."
    (Ir.Printer.graph_to_string g);
  Format.printf "static loads in foo: %d (one per path)@." (count_loads g);

  (* On the hot path the duplicated read is gone: fewer dynamic
     instructions than baseline. *)
  Format.printf "dynamic instructions, hot path: baseline %d vs DBDS %d@."
    (dynamic_instrs baseline 5) (dynamic_instrs prog 5);
  List.iter
    (fun i ->
      let result, _ = Interp.Machine.run prog ~args:[| i |] in
      Format.printf "main(%d) = %s@." i (Interp.Machine.result_to_string result))
    [ 5; -5 ]
