(** Inliner tests: splicing correctness, recursion handling, limits,
    and semantic preservation. *)

open Helpers
module G = Ir.Graph

let inline_all prog =
  let ctx = Opt.Phase.create ~program:prog () in
  ignore (Opt.Inline.inline_program ctx prog);
  check_program_verifies prog;
  prog

let call_count g =
  G.fold_instrs g
    (fun n id -> match G.kind g id with Ir.Types.Call _ -> n + 1 | _ -> n)
    0

let test_simple_inline () =
  let prog =
    compile
      "int add1(int x) { return x + 1; } int main(int n) { return add1(add1(n)); }"
  in
  let prog = inline_all prog in
  let main = Option.get (Ir.Program.find_function prog "main") in
  Alcotest.(check int) "no calls left" 0 (call_count main);
  Alcotest.(check int) "result" 7 (run_int prog [ 5 ])

let test_inline_multi_return () =
  let src =
    {|
    int sign(int x) {
      if (x > 0) { return 1; }
      if (x < 0) { return -1; }
      return 0;
    }
    int main(int n) { return sign(n) * 100 + sign(-n); }
    |}
  in
  let prog = inline_all (compile src) in
  let main = Option.get (Ir.Program.find_function prog "main") in
  Alcotest.(check int) "no calls left" 0 (call_count main);
  Alcotest.(check int) "pos" 99 (run_int prog [ 5 ]);
  Alcotest.(check int) "neg" (-99) (run_int prog [ -5 ]);
  Alcotest.(check int) "zero" 0 (run_int prog [ 0 ])

let test_inline_void_callee () =
  let src =
    {|
    global int s;
    void bump(int k) { s = s + k; }
    int main(int n) { bump(n); bump(2 * n); return s; }
    |}
  in
  let prog = inline_all (compile src) in
  Alcotest.(check int) "effects preserved" 9 (run_int prog [ 3 ])

let test_inline_in_loop () =
  let src =
    {|
    int step(int acc, int i) {
      if (i % 2 == 0) { return acc + i; }
      return acc - 1;
    }
    int main(int n) {
      int acc = 0;
      int i = 0;
      while (i < n) { acc = step(acc, i); i = i + 1; }
      return acc;
    }
    |}
  in
  let prog = inline_all (compile src) in
  let main = Option.get (Ir.Program.find_function prog "main") in
  Alcotest.(check int) "no calls left" 0 (call_count main);
  (* 0+0 -1 +2 -1 +4 -1 +6 -1 = 8 for n = 8 *)
  Alcotest.(check int) "loop semantics" 8 (run_int prog [ 8 ])

let test_recursion_not_inlined () =
  let src = "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } int main(int n) { return fact(n); }" in
  let prog = inline_all (compile src) in
  let fact = Option.get (Ir.Program.find_function prog "fact") in
  Alcotest.(check bool) "self-call survives" true (call_count fact >= 1);
  Alcotest.(check int) "5! = 120" 120 (run_int prog [ 5 ])

let test_mutual_recursion_safe () =
  let src =
    {|
    int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
    int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
    int main(int n) { return is_even(n); }
    |}
  in
  let prog = inline_all (compile src) in
  Alcotest.(check int) "10 even" 1 (run_int prog [ 10 ]);
  Alcotest.(check int) "7 odd" 0 (run_int prog [ 7 ])

let test_caller_size_limit () =
  let limits =
    { Opt.Inline.default_limits with Opt.Inline.max_caller_size = 10 }
  in
  let prog =
    compile
      "int add1(int x) { return x + 1; } int main(int n) { return add1(n) + add1(n) + add1(n) + add1(n); }"
  in
  let ctx = Opt.Phase.create ~program:prog () in
  ignore (Opt.Inline.inline_program ~limits ctx prog);
  check_program_verifies prog;
  let main = Option.get (Ir.Program.find_function prog "main") in
  Alcotest.(check bool) "limit left calls in place" true (call_count main > 0);
  Alcotest.(check int) "still correct" 24 (run_int prog [ 5 ])

let test_inline_phis_in_callee () =
  (* Callee with internal control flow and phis; inlined mid-block. *)
  let src =
    {|
    int clamp(int x) {
      int r;
      if (x > 100) { r = 100; } else {
        if (x < 0) { r = 0; } else { r = x; }
      }
      return r;
    }
    int main(int n) {
      int a = clamp(n) * 2;
      int b = clamp(n - 50);
      return a + b;
    }
    |}
  in
  let prog = inline_all (compile src) in
  Alcotest.(check int) "over" 300 (run_int prog [ 200 ]);
  Alcotest.(check int) "mid" 130 (run_int prog [ 60 ]);
  Alcotest.(check int) "under" 0 (run_int prog [ -4 ])

let test_inline_argument_expressions () =
  (* Arguments with side effects must be evaluated exactly once. *)
  let src =
    {|
    global int calls;
    int id(int x) { return x; }
    int next() { calls = calls + 1; return calls; }
    int main(int n) { return id(next()) + id(next()) * 10; }
    |}
  in
  let prog = inline_all (compile src) in
  Alcotest.(check int) "args evaluated once each" 21 (run_int prog [ 0 ])

let test_inline_work_charged () =
  let prog =
    compile "int f(int x) { return x * 2; } int main(int n) { return f(n); }"
  in
  let ctx = Opt.Phase.create ~program:prog () in
  ignore (Opt.Inline.inline_program ctx prog);
  Alcotest.(check bool) "work charged" true (ctx.Opt.Phase.work > 0)

let suite =
  [
    test "simple inline" test_simple_inline;
    test "multi-return callee" test_inline_multi_return;
    test "void callee" test_inline_void_callee;
    test "inline inside loop" test_inline_in_loop;
    test "recursion not inlined" test_recursion_not_inlined;
    test "mutual recursion safe" test_mutual_recursion_safe;
    test "caller size limit" test_caller_size_limit;
    test "callee with phis" test_inline_phis_in_callee;
    test "argument side effects" test_inline_argument_expressions;
    test "work charged" test_inline_work_charged;
  ]
