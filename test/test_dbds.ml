(** Tests for the DBDS core: simulation tier (the paper's figures and
    listings as golden tests), duplication transform + SSA repair,
    trade-off predicate, and the full driver. *)

open Ir.Types
module G = Ir.Graph
open Helpers

let ctx_for prog = Opt.Phase.create ~program:prog ()

let simulate ?(config = Dbds.Config.default) prog fn =
  let g = Option.get (Ir.Program.find_function prog fn) in
  let ctx = ctx_for prog in
  Dbds.Simulation.simulate ctx config g

let count_kind prog fn pred =
  let g = Option.get (Ir.Program.find_function prog fn) in
  G.fold_instrs g (fun n id -> if pred (G.kind g id) then n + 1 else n) 0

let has_opp opp c = List.mem opp c.Dbds.Candidate.opportunities

(* Differential check under a DBDS config. *)
let check_dbds_preserves ?(config = Dbds.Config.default)
    ?(inputs = [ [ 0 ]; [ 1 ]; [ -7 ]; [ 13 ]; [ 42 ] ]) src =
  let prog = compile src in
  let prog' = Ir.Program.copy prog in
  let _ = Dbds.Driver.optimize_program ~config prog' in
  check_program_verifies prog';
  List.iter
    (fun args ->
      let run p =
        match
          Interp.Machine.run ~icache:Interp.Machine.no_icache p
            ~args:(Array.of_list args)
        with
        | r, _ -> Interp.Machine.result_to_string r
        | exception Interp.Machine.Runtime_error m -> "fault: " ^ m
      in
      Alcotest.(check string)
        (Printf.sprintf "args %s" (String.concat "," (List.map string_of_int args)))
        (run prog) (run prog'))
    inputs;
  prog'

(* ---- paper figure 1: constant folding through a phi ---- *)

let figure1 =
  {|
  int main(int x) {
    int phi;
    if (x > 0) { phi = x; } else { phi = 0; }
    return 2 + phi;
  }
  |}

let test_fig1_simulation_finds_constant_fold () =
  let prog = compile figure1 in
  let candidates = simulate prog "main" in
  (* The false predecessor (phi = 0) enables constant folding 2 + 0. *)
  Alcotest.(check bool) "at least one candidate" true (candidates <> []);
  Alcotest.(check bool) "a constant-fold or copy-prop candidate exists" true
    (List.exists
       (fun c ->
         has_opp Dbds.Candidate.Constant_fold c
         || has_opp Dbds.Candidate.Copy_propagation c)
       candidates)

let test_fig1_dbds_end_to_end () =
  let prog' = check_dbds_preserves figure1 in
  (* After duplication + folding, the false path returns the constant 2:
     no add remains on that path; at most one add in the function. *)
  Alcotest.(check bool) "adds reduced to at most 1" true
    (count_kind prog' "main" (function Binop (Add, _, _) -> true | _ -> false)
    <= 1)

(* ---- paper figure 3: strength reduction x / phi(a>b ? x : 2) ---- *)

let figure3 =
  {|
  int main(int a, int b, int x) {
    int phi;
    if (a > b) { phi = x; } else { phi = 2; }
    return x / phi;
  }
  |}

let test_fig3_simulation_finds_strength_reduction () =
  let prog = compile figure3 in
  let candidates = simulate prog "main" in
  let sr =
    List.filter (has_opp Dbds.Candidate.Strength_reduce) candidates
  in
  Alcotest.(check bool) "strength-reduction candidate found" true (sr <> []);
  (* The paper computes 32 - 1 = 31 cycles saved for the division. *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "saves ~31 cycles" true
        (c.Dbds.Candidate.benefit >= 31.0))
    sr

let test_fig3_dbds_end_to_end () =
  let prog' =
    check_dbds_preserves
      ~inputs:[ [ 3; 1; 10 ]; [ 1; 3; 10 ]; [ 0; 0; -9 ]; [ 5; 2; 0 ] ]
      figure3
  in
  (* The division survives only on the a>b path; the other path shifts. *)
  Alcotest.(check int) "one division left" 1
    (count_kind prog' "main" (function Binop (Div, _, _) -> true | _ -> false));
  Alcotest.(check int) "a shift appeared" 1
    (count_kind prog' "main" (function Binop (Shr, _, _) -> true | _ -> false))

(* ---- paper listings 1/2: conditional elimination ---- *)

let listing1 =
  {|
  int main(int i) {
    int p;
    if (i > 0) { p = i; } else { p = 13; }
    if (p > 12) { return 12; }
    return i;
  }
  |}

let test_listing1_simulation_finds_condelim () =
  let prog = compile listing1 in
  let candidates = simulate prog "main" in
  Alcotest.(check bool) "conditional-elimination candidate" true
    (List.exists (has_opp Dbds.Candidate.Conditional_elimination) candidates)

let test_listing1_dbds_end_to_end () =
  let prog' =
    check_dbds_preserves ~inputs:[ [ 14 ]; [ 1 ]; [ 0 ]; [ -5 ] ] listing1
  in
  (* The else-path condition p=13 > 12 folds: its compare disappears. *)
  Alcotest.(check int) "i=0 goes through constant path" 12 (run_int prog' [ 0 ]);
  Alcotest.(check bool) "compare count reduced" true
    (count_kind prog' "main" (function Cmp _ -> true | _ -> false) <= 2)

(* ---- paper listings 3/4: escape analysis ---- *)

let listing3 =
  {|
  class A { int x; }
  int main(int k) {
    A a = null;
    if (k > 0) { a = new A(77); }
    A p;
    if (a == null) { p = new A(0); } else { p = a; }
    return p.x;
  }
  |}

let test_listing3_simulation_finds_pea () =
  let prog = compile listing3 in
  let candidates = simulate prog "main" in
  Alcotest.(check bool) "escape-analysis candidate" true
    (List.exists (has_opp Dbds.Candidate.Escape_analysis) candidates)

let test_listing3_dbds_end_to_end () =
  let prog' = check_dbds_preserves ~inputs:[ [ 1 ]; [ 0 ] ] listing3 in
  (* After duplicating the merge, scalar replacement removes the
     null-branch allocation — and with the loads folded, the k>0
     allocation dies too: the function becomes allocation-free. *)
  Alcotest.(check bool) "allocations eliminated" true
    (count_kind prog' "main" (function New _ -> true | _ -> false) <= 1);
  Alcotest.(check int) "null path returns 0" 0 (run_int prog' [ 0 ]);
  Alcotest.(check int) "non-null path returns 77" 77 (run_int prog' [ 1 ])

(* ---- paper listings 5/6: read elimination ---- *)

let listing5 =
  {|
  class A { int x; }
  global int s;
  int foo(A a, int i) {
    if (i > 0) @0.9 { s = a.x; } else { s = 0; }
    return a.x;
  }
  int main(int i) { A a = new A(41); return foo(a, i); }
  |}

let test_listing5_simulation_finds_readelim () =
  let prog = compile listing5 in
  let candidates = simulate prog "foo" in
  let re = List.filter (has_opp Dbds.Candidate.Read_elimination) candidates in
  Alcotest.(check bool) "read-elimination candidate on the hot pred" true
    (List.exists (fun c -> c.Dbds.Candidate.probability > 0.5) re)

let test_listing5_dbds_end_to_end () =
  let src = listing5 in
  let prog = compile src in
  let prog' = Ir.Program.copy prog in
  let _ = Dbds.Driver.optimize_program prog' in
  check_program_verifies prog';
  Alcotest.(check int) "result preserved (hot path)" 41 (run_int prog' [ 5 ]);
  Alcotest.(check int) "result preserved (cold path)" 41 (run_int prog' [ -5 ]);
  (* In the duplicated hot path the second read is eliminated: strictly
     fewer dynamic loads than the baseline on the hot path. *)
  let dynamic_loads p =
    let prog_run = Ir.Program.copy p in
    let _, stats =
      Interp.Machine.run ~icache:Interp.Machine.no_icache prog_run ~args:[| 5 |]
    in
    stats.Interp.Machine.instrs_executed
  in
  Alcotest.(check bool) "fewer instructions executed" true
    (dynamic_loads prog' < dynamic_loads prog)

(* ---- transform: duplication + SSA repair ---- *)

let diamond_with_tail () =
  (* Build: entry -> (bt|bf) -> merge (v = phi*2) -> tail uses v. *)
  compile
    {|
    int main(int x) {
      int p;
      if (x > 0) { p = x; } else { p = 3; }
      int v = p * 2;
      int w = v + 1;
      return w;
    }
    |}

let find_merge g =
  match
    G.fold_blocks g
      (fun acc bid -> if G.pred_count g bid >= 2 then bid :: acc else acc)
      []
  with
  | [ m ] -> m
  | l -> Alcotest.failf "expected exactly one merge, got %d" (List.length l)

let test_transform_duplicates_and_verifies () =
  let prog = diamond_with_tail () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let m = find_merge g in
  let pred = List.hd (G.preds g m) in
  let bm' = Dbds.Transform.duplicate g ~merge:m ~pred in
  check_verifies g;
  Alcotest.(check bool) "duplicate block exists" true (G.block_exists g bm');
  (* The merge lost one predecessor. *)
  Alcotest.(check int) "merge has 1 pred left" 1 (List.length (G.preds g m))

let test_transform_preserves_semantics_each_pred () =
  let run p args =
    match
      Interp.Machine.run ~icache:Interp.Machine.no_icache p
        ~args:(Array.of_list args)
    with
    | Some (Interp.Machine.VInt n), _ -> n
    | _ -> Alcotest.fail "expected int"
  in
  List.iter
    (fun pred_pick ->
      let prog = diamond_with_tail () in
      let g = Option.get (Ir.Program.find_function prog "main") in
      let m = find_merge g in
      let pred = List.nth (G.preds g m) pred_pick in
      ignore (Dbds.Transform.duplicate g ~merge:m ~pred);
      check_verifies g;
      List.iter
        (fun x ->
          Alcotest.(check int)
            (Printf.sprintf "pred %d, x=%d" pred_pick x)
            (run (diamond_with_tail ()) [ x ])
            (run prog [ x ]))
        [ 5; -5; 0 ])
    [ 0; 1 ]

let test_transform_duplicate_into_both_preds () =
  let prog = diamond_with_tail () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let m = find_merge g in
  (match G.preds g m with
  | [ p1; p2 ] ->
      ignore (Dbds.Transform.duplicate g ~merge:m ~pred:p1);
      check_verifies g;
      (* The merge now has a single pred; duplicating again must refuse. *)
      (match Dbds.Transform.duplicate g ~merge:m ~pred:p2 with
      | exception Dbds.Transform.Not_applicable _ -> ()
      | _ -> Alcotest.fail "expected Not_applicable")
  | _ -> Alcotest.fail "expected two preds");
  check_verifies g

let test_transform_merge_with_branch_terminator () =
  (* The merge block ends in a branch: SSA repair must insert phis at both
     successors. *)
  let src =
    {|
    int main(int x) {
      int p;
      if (x > 0) { p = x; } else { p = 5; }
      int v = p + 7;
      if (v > 9) { return v * 2; }
      return v;
    }
    |}
  in
  let prog = compile src in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let merges =
    G.fold_blocks g
      (fun acc bid -> if G.pred_count g bid >= 2 then bid :: acc else acc)
      []
  in
  (* Duplicate the phi-merge (the one holding a phi). *)
  let m =
    List.find (fun bid -> G.phis g bid <> []) merges
  in
  let pred = List.hd (G.preds g m) in
  ignore (Dbds.Transform.duplicate g ~merge:m ~pred);
  check_verifies g;
  let run p args =
    match Interp.Machine.run p ~args with
    | Some (Interp.Machine.VInt n), _ -> n
    | _ -> Alcotest.fail "int expected"
  in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "x=%d" x)
        (run (compile src) [| x |])
        (run prog [| x |]))
    [ 5; 1; -4; 0; 100 ]

let test_transform_rejects_loop_header () =
  (* Regression (progen seed 345): duplicating a loop header into its
     back-edge predecessor is loop rotation, not tail duplication — the
     sequential SSA repair is off by one iteration when one header phi's
     edge input is another phi of the same header.  The transform must
     refuse. *)
  let src =
    {|
    global int gs;
    int main(int n) {
      int y = 1;
      int acc = 7;
      int i = 0;
      while (i < 3) {
        gs = gs + 2;
        i = i + 1;
        acc = acc + y;
        y = gs;
      }
      return acc + y;
    }
    |}
  in
  let prog = compile src in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let dom = Ir.Dom.compute g in
  let loops = Ir.Loops.compute dom in
  let headers =
    G.fold_blocks g
      (fun acc bid ->
        if Ir.Loops.is_header loops bid then bid :: acc else acc)
      []
  in
  Alcotest.(check bool) "has a loop header" true (headers <> []);
  List.iter
    (fun h ->
      List.iter
        (fun p ->
          match Dbds.Transform.duplicate g ~merge:h ~pred:p with
          | exception Dbds.Transform.Not_applicable _ -> ()
          | _ -> Alcotest.fail "loop header duplication must be rejected")
        (G.preds g h))
    headers;
  check_verifies g;
  (* Backtracking (which probes every merge) must stay sound here. *)
  let prog' = Ir.Program.copy prog in
  let _ = Dbds.Driver.optimize_program ~config:Dbds.Config.backtracking prog' in
  check_program_verifies prog';
  Alcotest.(check int) "semantics preserved" (run_int prog [ 0 ])
    (run_int prog' [ 0 ])

let test_transform_three_way_merge () =
  let src =
    {|
    int main(int x) {
      int p;
      if (x > 10) { p = 1; } else {
        if (x > 0) { p = 2; } else { p = 3; }
      }
      return p * 100 + x;
    }
    |}
  in
  let prog = compile src in
  let g = Option.get (Ir.Program.find_function prog "main") in
  (* Find the 3-way merge (after simplification of the inner merge the
     frontend produces nested 2-way merges; duplicate the outer one). *)
  let m =
    G.fold_blocks g
      (fun acc bid ->
        if G.pred_count g bid >= 2 && G.phis g bid <> [] then bid :: acc
        else acc)
      []
    |> List.hd
  in
  List.iter
    (fun pred ->
      if G.block_exists g m && List.mem pred (G.preds g m)
         && List.length (G.preds g m) >= 2
      then begin
        ignore (Dbds.Transform.duplicate g ~merge:m ~pred);
        check_verifies g
      end)
    (G.preds g m);
  let run p args =
    match Interp.Machine.run p ~args with
    | Some (Interp.Machine.VInt n), _ -> n
    | _ -> Alcotest.fail "int expected"
  in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "x=%d" x)
        (run (compile src) [| x |])
        (run prog [| x |]))
    [ 20; 5; -5 ]

(* ---- trade-off tier ---- *)

let mk_candidate ?(benefit = 10.0) ?(probability = 1.0) ?(size_delta = 4) () =
  {
    Dbds.Candidate.merge = 1;
    pred = 0;
    path = [];
    benefit;
    probability;
    size_delta;
    opportunities = [ Dbds.Candidate.Constant_fold ];
  }

let budget_with ~initial ~current =
  { Dbds.Tradeoff.initial_size = initial; current_size = current }

let test_tradeoff_accepts_beneficial () =
  let b = budget_with ~initial:100 ~current:100 in
  Alcotest.(check bool) "accepted" true
    (Dbds.Tradeoff.should_duplicate Dbds.Config.default b (mk_candidate ()))

let test_tradeoff_rejects_high_cost () =
  let b = budget_with ~initial:100 ~current:100 in
  let c = mk_candidate ~benefit:0.001 ~probability:0.001 ~size_delta:40 () in
  Alcotest.(check bool) "rejected" false
    (Dbds.Tradeoff.should_duplicate Dbds.Config.default b c)

let test_tradeoff_respects_size_budget () =
  (* cs + c >= is * IB: reject. *)
  let b = budget_with ~initial:100 ~current:148 in
  let c = mk_candidate ~size_delta:10 () in
  Alcotest.(check bool) "budget exhausted" false
    (Dbds.Tradeoff.should_duplicate Dbds.Config.default b c);
  let b2 = budget_with ~initial:100 ~current:100 in
  Alcotest.(check bool) "budget available" true
    (Dbds.Tradeoff.should_duplicate Dbds.Config.default b2 c)

let test_tradeoff_respects_max_unit_size () =
  let config = { Dbds.Config.default with Dbds.Config.max_unit_size = 200 } in
  let b = budget_with ~initial:100 ~current:201 in
  Alcotest.(check bool) "hard cap" false
    (Dbds.Tradeoff.should_duplicate config b (mk_candidate ()))

let test_tradeoff_probability_scales () =
  (* A cold block needs proportionally more benefit. *)
  let b = budget_with ~initial:1000 ~current:1000 in
  let cold = mk_candidate ~benefit:1.0 ~probability:0.0001 ~size_delta:30 () in
  let hot = mk_candidate ~benefit:1.0 ~probability:1.0 ~size_delta:30 () in
  Alcotest.(check bool) "cold rejected" false
    (Dbds.Tradeoff.should_duplicate Dbds.Config.default b cold);
  Alcotest.(check bool) "hot accepted" true
    (Dbds.Tradeoff.should_duplicate Dbds.Config.default b hot)

let test_tradeoff_dupalot_ignores_cost () =
  let b = budget_with ~initial:100 ~current:100 in
  let c = mk_candidate ~benefit:0.001 ~probability:0.001 ~size_delta:500 () in
  Alcotest.(check bool) "dupalot accepts any benefit" true
    (Dbds.Tradeoff.should_duplicate Dbds.Config.dupalot b c)

let test_tradeoff_ranking () =
  let c1 = mk_candidate ~benefit:1.0 ~probability:1.0 () in
  let c2 = mk_candidate ~benefit:100.0 ~probability:1.0 () in
  let c3 = mk_candidate ~benefit:100.0 ~probability:0.001 () in
  match Dbds.Tradeoff.rank [ c1; c2; c3 ] with
  | first :: _ ->
      Alcotest.(check (float 1e-9)) "highest scaled benefit first" 100.0
        (Dbds.Candidate.scaled_benefit first)
  | [] -> Alcotest.fail "empty"

(* ---- driver ---- *)

let test_driver_baseline_no_duplication () =
  let prog = compile figure1 in
  let _, stats = Dbds.Driver.optimize_program ~config:Dbds.Config.off prog in
  let t = Dbds.Driver.total_stats stats in
  Alcotest.(check int) "no duplications in baseline" 0
    t.Dbds.Driver.duplications_performed

let test_driver_dbds_duplicates () =
  let prog = compile figure1 in
  let _, stats = Dbds.Driver.optimize_program prog in
  let t = Dbds.Driver.total_stats stats in
  Alcotest.(check bool) "performed duplications" true
    (t.Dbds.Driver.duplications_performed > 0);
  check_program_verifies prog

let test_driver_dupalot_duplicates_at_least_as_much () =
  let src = listing1 in
  let p1 = compile src and p2 = compile src in
  let _, s1 = Dbds.Driver.optimize_program ~config:Dbds.Config.dbds p1 in
  let _, s2 = Dbds.Driver.optimize_program ~config:Dbds.Config.dupalot p2 in
  let d1 = (Dbds.Driver.total_stats s1).Dbds.Driver.duplications_performed in
  let d2 = (Dbds.Driver.total_stats s2).Dbds.Driver.duplications_performed in
  Alcotest.(check bool) "dupalot >= dbds" true (d2 >= d1)

let test_driver_backtracking_improves_and_verifies () =
  let prog = compile figure3 in
  let _, stats =
    Dbds.Driver.optimize_program ~config:Dbds.Config.backtracking prog
  in
  check_program_verifies prog;
  let t = Dbds.Driver.total_stats stats in
  Alcotest.(check bool) "attempted backtracking" true
    (t.Dbds.Driver.backtrack_attempts > 0)

let test_driver_backtracking_preserves_semantics () =
  ignore
    (check_dbds_preserves ~config:Dbds.Config.backtracking
       ~inputs:[ [ 14 ]; [ 1 ]; [ 0 ]; [ -5 ] ]
       listing1)

let test_driver_respects_code_size_budget () =
  (* With a zero budget, nothing should be duplicated. *)
  let config =
    { Dbds.Config.default with Dbds.Config.size_budget = 1.0 }
  in
  let prog = compile listing1 in
  let _, stats = Dbds.Driver.optimize_program ~config prog in
  let t = Dbds.Driver.total_stats stats in
  Alcotest.(check int) "no duplication under zero budget" 0
    t.Dbds.Driver.duplications_performed

let test_driver_iterates () =
  (* Chained merges: the second opportunity appears only after the first
     duplication (paper §5.2's motivation for iterating). *)
  let src =
    {|
    int main(int x) {
      int p;
      if (x > 0) @0.9 { p = x; } else { p = 0; }
      int q = 2 + p;
      int r;
      if (x > 5) @0.9 { r = q; } else { r = 1; }
      return r * 4;
    }
    |}
  in
  ignore (check_dbds_preserves ~inputs:[ [ 7 ]; [ 3 ]; [ -1 ]; [ 0 ] ] src)

let test_driver_loop_bodies_preserved () =
  ignore
    (check_dbds_preserves
       ~inputs:[ [ 0 ]; [ 1 ]; [ 9 ]; [ 33 ] ]
       {|
       int main(int n) {
         int acc = 0;
         int i = 0;
         while (i < n) @0.95 {
           int p;
           if (i % 2 == 0) @0.5 { p = i; } else { p = 2; }
           acc = acc + 6 / p;
           i = i + 1;
         }
         return acc;
       }
       |})

let suite =
  [
    test "fig1: simulation finds fold" test_fig1_simulation_finds_constant_fold;
    test "fig1: dbds end-to-end" test_fig1_dbds_end_to_end;
    test "fig3: simulation finds strength reduction"
      test_fig3_simulation_finds_strength_reduction;
    test "fig3: dbds end-to-end" test_fig3_dbds_end_to_end;
    test "listing1: simulation finds condelim"
      test_listing1_simulation_finds_condelim;
    test "listing1: dbds end-to-end" test_listing1_dbds_end_to_end;
    test "listing3: simulation finds pea" test_listing3_simulation_finds_pea;
    test "listing3: dbds end-to-end" test_listing3_dbds_end_to_end;
    test "listing5: simulation finds readelim"
      test_listing5_simulation_finds_readelim;
    test "listing5: dbds end-to-end" test_listing5_dbds_end_to_end;
    test "transform: duplicates and verifies"
      test_transform_duplicates_and_verifies;
    test "transform: semantics per pred"
      test_transform_preserves_semantics_each_pred;
    test "transform: both preds" test_transform_duplicate_into_both_preds;
    test "transform: branch terminator" test_transform_merge_with_branch_terminator;
    test "transform: rejects loop header" test_transform_rejects_loop_header;
    test "transform: three-way merge" test_transform_three_way_merge;
    test "tradeoff: accepts beneficial" test_tradeoff_accepts_beneficial;
    test "tradeoff: rejects high cost" test_tradeoff_rejects_high_cost;
    test "tradeoff: size budget" test_tradeoff_respects_size_budget;
    test "tradeoff: max unit size" test_tradeoff_respects_max_unit_size;
    test "tradeoff: probability scaling" test_tradeoff_probability_scales;
    test "tradeoff: dupalot ignores cost" test_tradeoff_dupalot_ignores_cost;
    test "tradeoff: ranking" test_tradeoff_ranking;
    test "driver: baseline off" test_driver_baseline_no_duplication;
    test "driver: dbds duplicates" test_driver_dbds_duplicates;
    test "driver: dupalot >= dbds" test_driver_dupalot_duplicates_at_least_as_much;
    test "driver: backtracking verifies" test_driver_backtracking_improves_and_verifies;
    test "driver: backtracking semantics" test_driver_backtracking_preserves_semantics;
    test "driver: size budget respected" test_driver_respects_code_size_budget;
    test "driver: iterates over chained merges" test_driver_iterates;
    test "driver: loop bodies preserved" test_driver_loop_bodies_preserved;
  ]
