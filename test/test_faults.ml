(** Fault injection and crash containment: plan syntax, every named
    site fires, rollback byte-identity, jobs determinism under faults,
    crash-bundle round-trips and replay, paranoid mode, and the
    {!Dbds.Parallel.map} join-all guarantee under repeated failures. *)

open Helpers
module F = Dbds.Faults
module D = Dbds.Driver

let figure1 =
  {|
  int main(int x) {
    int phi;
    if (x > 0) { phi = x; } else { phi = 0; }
    return 2 + phi;
  }
|}

(* Three functions, each with a merge, so multi-function containment
   and the jobs matrix have something to chew on (optimized with
   [~inline:false] to keep them separate compilation units). *)
let trio =
  {|
  int f(int x) { int a; if (x > 0) { a = x; } else { a = 1; } return a * 2; }
  int g(int x) { int b; if (x > 3) { b = x + 1; } else { b = 2; } return b + b; }
  int main(int x) { return f(x) + g(x); }
|}

let plan ?fn site hit = { F.seed = 0; site; hit; fn }

let report ?(mode = Dbds.Config.Dbds) ?fault_plan ?(containment = true)
    ?(paranoid = false) ?bundle_dir ?(inline = true) ?(jobs = 1) src =
  let prog = compile src in
  let config =
    {
      Dbds.Config.default with
      Dbds.Config.mode;
      fault_plan;
      containment;
      verify_between_phases = paranoid;
      bundle_dir;
    }
  in
  (prog, D.optimize_program_report ~config ~inline ~jobs prog)

let print_program prog =
  let buf = Buffer.create 1024 in
  Ir.Program.iter_functions prog (fun g ->
      Buffer.add_string buf (Ir.Printer.graph_to_string g);
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* Fingerprint of a finished run: printed graphs, failures, stats and
   the contained counters — byte-equal fingerprints = identical runs. *)
let fingerprint prog (r : D.report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (print_program prog);
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf (Format.asprintf "%s: %a@." name D.pp_stats s))
    r.D.rep_stats;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "failure %s at %s: %s\n" f.D.fail_fn f.D.fail_site
           f.D.fail_exn))
    r.D.rep_failures;
  let ctx = r.D.rep_ctx in
  List.iter
    (fun (site, n) ->
      Buffer.add_string buf (Printf.sprintf "contained %s x%d\n" site n))
    ctx.Opt.Phase.contained;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Plan syntax                                                         *)
(* ------------------------------------------------------------------ *)

let test_plan_syntax () =
  List.iter
    (fun s ->
      match F.of_string s with
      | Ok p -> Alcotest.(check string) s s (F.to_string p)
      | Error msg -> Alcotest.failf "%s: %s" s msg)
    [
      "sim.opportunity:1";
      "transform.apply:3";
      "ssa.repair:2:main";
      "parallel.worker:1";
      "analyses.cache:7:hot_loop";
    ];
  (match F.of_string "seed:42" with
  | Ok p ->
      Alcotest.(check string)
        "seed:42 = of_seed 42"
        (F.to_string (F.of_seed 42))
        (F.to_string p)
  | Error msg -> Alcotest.failf "seed:42: %s" msg);
  List.iter
    (fun s ->
      match F.of_string s with
      | Ok p -> Alcotest.failf "%S parsed as %s" s (F.to_string p)
      | Error _ -> ())
    [ ""; "bogus:1"; "transform.apply"; "transform.apply:0"; "ssa.repair:x" ]

let test_of_seed_deterministic () =
  for seed = 0 to 50 do
    let a = F.of_seed seed and b = F.of_seed seed in
    Alcotest.(check string)
      (Printf.sprintf "seed %d stable" seed)
      (F.to_string a) (F.to_string b);
    Alcotest.(check bool) "hit positive" true (a.F.hit >= 1)
  done;
  (* Not all seeds map to one plan. *)
  let distinct =
    List.init 30 F.of_seed |> List.map F.to_string |> List.sort_uniq compare
  in
  Alcotest.(check bool) "seeds spread over plans" true (List.length distinct > 3)

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

(* Store sites are contained inside the artifact store as degraded
   operations (never driver failures) — their firing is asserted in the
   service suite. *)
let test_every_site_fires () =
  List.iter
    (fun site ->
      let name = F.site_to_string site in
      let _, r = report figure1 ~fault_plan:(plan site 1) in
      match r.D.rep_failures with
      | [ f ] ->
          Alcotest.(check string) (name ^ " site recorded") name f.D.fail_site;
          Alcotest.(check string) (name ^ " function") "main" f.D.fail_fn
      | l ->
          Alcotest.failf "%s: expected exactly one failure, got %d" name
            (List.length l))
    F.pipeline_sites

let test_rollback_byte_identity () =
  List.iter
    (fun (mode, site) ->
      let tag = Dbds.Config.mode_to_string mode in
      let prog, r = report figure1 ~mode ~fault_plan:(plan site 1) in
      match r.D.rep_failures with
      | [ f ] ->
          let g = Option.get (Ir.Program.find_function prog "main") in
          Alcotest.(check string)
            (tag ^ ": graph = pre-attempt IR")
            f.D.fail_pre_ir
            (Ir.Printer.graph_to_string g);
          check_verifies g;
          (* Zeroed stats for the contained function. *)
          let s = List.assoc "main" r.D.rep_stats in
          Alcotest.(check int) (tag ^ ": no dup recorded") 0
            s.D.duplications_performed
      | l -> Alcotest.failf "%s: expected one failure, got %d" tag (List.length l))
    [
      (Dbds.Config.Dbds, F.Transform_apply);
      (Dbds.Config.Dupalot, F.Ssa_repair);
      (Dbds.Config.Backtracking, F.Transform_apply);
    ]

let test_contained_program_still_runs () =
  let prog, r = report figure1 ~fault_plan:(plan F.Transform_apply 1) in
  Alcotest.(check int) "one contained failure" 1 (List.length r.D.rep_failures);
  Alcotest.(check int) "main still computes" 7 (run_int prog [ 5 ])

let test_containment_off_escapes () =
  let prog = compile figure1 in
  let config =
    {
      Dbds.Config.default with
      Dbds.Config.fault_plan = Some (plan F.Transform_apply 1);
      containment = false;
    }
  in
  match D.optimize_program_report ~config ~jobs:1 prog with
  | _ -> Alcotest.fail "expected the injected fault to escape"
  | exception F.Injected { site = F.Transform_apply; hit = 1 } -> ()

let test_never_firing_plan_noop () =
  let _, quiet = report figure1 ~fault_plan:(plan F.Transform_apply 1000) in
  Alcotest.(check int) "no failures" 0 (List.length quiet.D.rep_failures);
  let prog_a, _ = report figure1 ~fault_plan:(plan F.Transform_apply 1000) in
  let prog_b, _ = report figure1 in
  Alcotest.(check string) "same optimized program" (print_program prog_b)
    (print_program prog_a)

let test_fn_scoped_plan () =
  let prog, r =
    report trio ~inline:false
      ~fault_plan:(plan ~fn:"g" F.Parallel_worker 1)
  in
  (match r.D.rep_failures with
  | [ f ] -> Alcotest.(check string) "only g fails" "g" f.D.fail_fn
  | l -> Alcotest.failf "expected one failure, got %d" (List.length l));
  (* f and main still optimized and the program still runs. *)
  Alcotest.(check bool) "other functions optimized" true
    ((D.total_stats r.D.rep_stats).D.duplications_performed > 0);
  Alcotest.(check int) "program runs" ((5 * 2) + (6 + 6)) (run_int prog [ 5 ])

let test_jobs_determinism_under_faults () =
  List.iter
    (fun site ->
      let fp jobs =
        let prog, r =
          report trio ~inline:false ~jobs ~fault_plan:(plan site 1)
        in
        fingerprint prog r
      in
      Alcotest.(check string)
        (F.site_to_string site ^ ": jobs:1 = jobs:4")
        (fp 1) (fp 4))
    [ F.Sim_opportunity; F.Transform_apply; F.Parallel_worker ]

let test_contained_counters () =
  let _, r = report trio ~inline:false ~fault_plan:(plan F.Parallel_worker 1) in
  let ctx = r.D.rep_ctx in
  Alcotest.(check int) "three contained" 3 (Opt.Phase.contained_total ctx);
  Alcotest.(check (list (pair string int)))
    "per-site breakdown"
    [ ("parallel.worker", 3) ]
    ctx.Opt.Phase.contained

(* ------------------------------------------------------------------ *)
(* Crash bundles                                                       *)
(* ------------------------------------------------------------------ *)

let test_bundle_render_parse () =
  let g = Option.get (Ir.Program.find_function (compile figure1) "main") in
  let b =
    {
      Dbds.Bundle.b_fn = "main";
      b_site = "transform.apply";
      b_exn = "Faults.Injected(transform.apply, hit 1)";
      b_plan = Some (plan F.Transform_apply 1);
      b_config =
        { Dbds.Config.default with Dbds.Config.mode = Dbds.Config.Dupalot };
      b_profile = None;
      b_ir = Ir.Printer.graph_to_string g;
    }
  in
  let b' = Dbds.Bundle.parse (Dbds.Bundle.render b) in
  Alcotest.(check string) "fn" b.Dbds.Bundle.b_fn b'.Dbds.Bundle.b_fn;
  Alcotest.(check string) "site" b.Dbds.Bundle.b_site b'.Dbds.Bundle.b_site;
  Alcotest.(check string) "exn" b.Dbds.Bundle.b_exn b'.Dbds.Bundle.b_exn;
  Alcotest.(check string) "ir" b.Dbds.Bundle.b_ir b'.Dbds.Bundle.b_ir;
  Alcotest.(check bool) "plan" true (b.Dbds.Bundle.b_plan = b'.Dbds.Bundle.b_plan);
  Alcotest.(check bool) "config" true
    (b.Dbds.Bundle.b_config = b'.Dbds.Bundle.b_config);
  Alcotest.check_raises "malformed"
    (Dbds.Bundle.Malformed "not a dbds-bundle v1 file") (fun () ->
      ignore (Dbds.Bundle.parse "junk"))

let test_bundle_write_and_replay () =
  let dir = Filename.temp_dir "dbds-bundles" "" in
  let _, r =
    report figure1 ~fault_plan:(plan F.Transform_apply 1) ~bundle_dir:dir
  in
  match r.D.rep_failures with
  | [ f ] -> (
      let path = Option.get f.D.fail_bundle in
      let b = Dbds.Bundle.read path in
      Alcotest.(check string) "bundle fn" "main" b.Dbds.Bundle.b_fn;
      Alcotest.(check string) "bundle ir = pre-attempt ir" f.D.fail_pre_ir
        b.Dbds.Bundle.b_ir;
      match D.replay_bundle b with
      | `Reproduced f' ->
          Alcotest.(check string) "same site on replay" f.D.fail_site
            f'.D.fail_site
      | `Clean -> Alcotest.fail "replay did not reproduce the crash")
  | l -> Alcotest.failf "expected one failure, got %d" (List.length l)

let test_bundle_replay_clean_without_plan () =
  (* Strip the fault plan: the same IR must now optimize cleanly. *)
  let dir = Filename.temp_dir "dbds-bundles" "" in
  let _, r =
    report figure1 ~fault_plan:(plan F.Sim_opportunity 1) ~bundle_dir:dir
  in
  let f = List.hd r.D.rep_failures in
  let b = Dbds.Bundle.read (Option.get f.D.fail_bundle) in
  match D.replay_bundle { b with Dbds.Bundle.b_plan = None } with
  | `Clean -> ()
  | `Reproduced f' ->
      Alcotest.failf "unexpected failure without the plan: %s" f'.D.fail_exn

(* ------------------------------------------------------------------ *)
(* Paranoid mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_paranoid_clean_run () =
  let prog_p, r = report trio ~inline:false ~paranoid:true in
  Alcotest.(check int) "no failures" 0 (List.length r.D.rep_failures);
  let prog, _ = report trio ~inline:false in
  Alcotest.(check string) "same result as non-paranoid" (print_program prog)
    (print_program prog_p)

let test_paranoid_over_workloads () =
  (* Paranoid verification must stay silent over the whole registry —
     every phase leaves valid SSA behind on every benchmark. *)
  let b = List.hd Workloads.Micro.suite.Workloads.Suite.benchmarks in
  let prog = Harness.Runner.compile_benchmark b in
  let config = Dbds.Config.{ paranoid with mode = Dbds } in
  let r = D.optimize_program_report ~config ~jobs:2 prog in
  Alcotest.(check int) "no paranoid failures" 0 (List.length r.D.rep_failures)

(* ------------------------------------------------------------------ *)
(* Parallel.map under failure                                          *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_parallel_map_survives_repeated_failure () =
  (* A hundred raising maps in a row must neither wedge (leaked
     domains) nor corrupt later maps. *)
  for i = 0 to 99 do
    match
      Dbds.Parallel.map ~jobs:4
        (fun x -> if x = i mod 20 then raise (Boom x) else x)
        (List.init 20 Fun.id)
    with
    | _ -> Alcotest.fail "expected Boom"
    | exception Boom x -> Alcotest.(check int) "failing index" (i mod 20) x
  done;
  Alcotest.(check (list int)) "pool still healthy" [ 1; 2; 3 ]
    (Dbds.Parallel.map ~jobs:4 succ [ 0; 1; 2 ])

let suite =
  [
    test "plan syntax round-trips" test_plan_syntax;
    test "of_seed is deterministic" test_of_seed_deterministic;
    test "every site fires" test_every_site_fires;
    test "rollback is byte-identical" test_rollback_byte_identity;
    test "contained program still runs" test_contained_program_still_runs;
    test "containment off lets faults escape" test_containment_off_escapes;
    test "never-firing plan is a no-op" test_never_firing_plan_noop;
    test "fn-scoped plan hits one function" test_fn_scoped_plan;
    test "jobs:1 = jobs:4 under faults" test_jobs_determinism_under_faults;
    test "contained counters aggregate" test_contained_counters;
    test "bundle render/parse round-trip" test_bundle_render_parse;
    test "bundle write + replay reproduces" test_bundle_write_and_replay;
    test "bundle replays clean without plan" test_bundle_replay_clean_without_plan;
    test "paranoid clean run is silent" test_paranoid_clean_run;
    test "paranoid over a workload" test_paranoid_over_workloads;
    test "Parallel.map survives repeated failure"
      test_parallel_map_survives_repeated_failure;
  ]
