(** Profile collection tests: recorded branch frequencies match the
    program's actual behaviour, and profile-guided DBDS reproduces the
    decisions made with hand annotations. *)

open Helpers
module P = Interp.Profile

let profile_run ?fuel src args =
  let prog = compile src in
  let profile = P.create () in
  let _ = Interp.Machine.run ?fuel ~profile prog ~args:(Array.of_list args) in
  (prog, profile)

let test_counts_match_behaviour () =
  (* 100 iterations; i % 4 == 0 is true 25 times. *)
  let src =
    {|
    global int hits;
    int main(int n) {
      int i = 0;
      while (i < n) {
        if (i % 4 == 0) { hits = hits + 1; }
        i = i + 1;
      }
      return hits;
    }
    |}
  in
  let prog, profile = profile_run src [ 100 ] in
  let g = Option.get (Ir.Program.find_function prog "main") in
  (* Find the i%4 branch: the one with observed probability 0.25. *)
  let probs = ref [] in
  Ir.Graph.iter_blocks g (fun bid ->
      match Ir.Graph.term g bid with
      | Ir.Types.Branch _ -> (
          match P.observed profile ~fn:"main" ~bid with
          | Some p -> probs := p :: !probs
          | None -> ())
      | _ -> ());
  Alcotest.(check bool) "loop branch ~0.99 observed" true
    (List.exists (fun p -> p > 0.95) !probs);
  Alcotest.(check bool) "mod-4 branch ~0.25 observed" true
    (List.exists (fun p -> Float.abs (p -. 0.25) < 0.02) !probs)

let test_apply_rewrites_probabilities () =
  let src =
    "int main(int n) { int acc = 0; int i = 0; while (i < n) { if (i % 10 == 0) { acc = acc + 1; } i = i + 1; } return acc; }"
  in
  let prog, profile = profile_run src [ 200 ] in
  P.apply profile prog;
  let g = Option.get (Ir.Program.find_function prog "main") in
  let found = ref false in
  Ir.Graph.iter_blocks g (fun bid ->
      match Ir.Graph.term g bid with
      | Ir.Types.Branch { prob; _ } ->
          if Float.abs (prob -. 0.1) < 0.02 then found := true
      | _ -> ());
  Alcotest.(check bool) "a branch carries the observed 0.1" true !found

let test_min_samples_threshold () =
  let profile = P.create () in
  P.record profile ~fn:"f" ~bid:3 ~taken_true:true;
  Alcotest.(check (option (float 1e-9))) "below threshold" None
    (P.observed profile ~fn:"f" ~bid:3);
  for _ = 1 to 10 do
    P.record profile ~fn:"f" ~bid:3 ~taken_true:true
  done;
  Alcotest.(check (option (float 1e-9))) "above threshold" (Some 1.0)
    (P.observed profile ~fn:"f" ~bid:3);
  Alcotest.(check int) "samples counted" 11 (P.samples profile)

let test_apply_clamps () =
  (* An always-taken branch must not become probability 1.0 exactly. *)
  let src =
    "int main(int n) { int i = 0; int acc = 0; while (i < n) { if (i >= 0) { acc = acc + 1; } i = i + 1; } return acc; }"
  in
  let prog, profile = profile_run src [ 50 ] in
  P.apply profile prog;
  Ir.Program.iter_functions prog (fun g ->
      Ir.Graph.iter_blocks g (fun bid ->
          match Ir.Graph.term g bid with
          | Ir.Types.Branch { prob; _ } ->
              Alcotest.(check bool) "clamped" true (prob > 0.0 && prob < 1.0)
          | _ -> ()))

let test_profile_guided_dbds_matches_annotated () =
  (* The same program, once with hand annotations and once profiled:
     DBDS should duplicate in both and preserve semantics. *)
  let body annotated =
    Printf.sprintf
      {|
      int main(int n) {
        int acc = 0;
        int i = 0;
        while (i < n) %s {
          int divisor;
          if (i %% 8 != 0) %s { divisor = 2; } else { divisor = i %% 7 + 3; }
          acc = (acc + (i * 3 + 1) / divisor) & 16777215;
          i = i + 1;
        }
        return acc;
      }
      |}
      (if annotated then "@0.99" else "")
      (if annotated then "@0.87" else "")
  in
  (* Annotated run. *)
  let annotated = compile (body true) in
  let _, s1 = Dbds.Driver.optimize_program annotated in
  let d1 = (Dbds.Driver.total_stats s1).Dbds.Driver.duplications_performed in
  (* Profile-guided run: interpret, apply, compile. *)
  let profiled = compile (body false) in
  let profile = P.create () in
  let _ = Interp.Machine.run ~profile profiled ~args:[| 500 |] in
  P.apply profile profiled;
  let _, s2 = Dbds.Driver.optimize_program profiled in
  let d2 = (Dbds.Driver.total_stats s2).Dbds.Driver.duplications_performed in
  Alcotest.(check bool) "annotated duplicates" true (d1 > 0);
  Alcotest.(check int) "profiled matches annotated" d1 d2;
  check_program_verifies profiled;
  Alcotest.(check int) "same results" (run_int annotated [ 300 ])
    (run_int profiled [ 300 ])

(* A one-branch graph whose probability we can inspect after apply. *)
let one_branch_prog () =
  compile
    "int main(int n) { int acc = 0; if (n > 0) { acc = 1; } else { acc = 2; } return acc; }"

let branch_probs prog =
  let probs = ref [] in
  Ir.Program.iter_functions prog (fun g ->
      Ir.Graph.iter_blocks g (fun bid ->
          match Ir.Graph.term g bid with
          | Ir.Types.Branch { prob; _ } ->
              probs := (bid, prob) :: !probs
          | _ -> ()));
  List.sort compare !probs

let record_n profile ~bid ~taken ~total =
  for i = 1 to total do
    P.record profile ~fn:"main" ~bid ~taken_true:(i <= taken)
  done

let test_min_samples_boundary () =
  (* Exactly 7 samples: below the default threshold of 8 — apply must
     leave the static estimate.  The 8th sample flips it. *)
  let prog = one_branch_prog () in
  let bid, static_prob =
    match branch_probs prog with
    | [ (bid, p) ] -> (bid, p)
    | l -> Alcotest.failf "expected one branch, got %d" (List.length l)
  in
  let profile = P.create () in
  record_n profile ~bid ~taken:7 ~total:7;
  Alcotest.(check (option (float 1e-9))) "7 samples: observed is None" None
    (P.observed profile ~fn:"main" ~bid);
  P.apply profile prog;
  Alcotest.(check (float 1e-9)) "7 samples: static estimate kept" static_prob
    (List.assoc bid (branch_probs prog));
  P.record profile ~fn:"main" ~bid ~taken_true:true;
  Alcotest.(check (option (float 1e-9))) "8 samples: observed fires"
    (Some 1.0)
    (P.observed profile ~fn:"main" ~bid);
  P.apply profile prog;
  Alcotest.(check bool) "8 samples: probability rewritten" true
    (List.assoc bid (branch_probs prog) <> static_prob)

let test_clamp_at_exact_extremes () =
  (* Observed frequencies of exactly 0.0 and 1.0 must clamp to the
     configured epsilon, never to the extremes themselves. *)
  let check_extreme ~taken ~expect_near =
    let prog = one_branch_prog () in
    let bid =
      match branch_probs prog with
      | [ (bid, _) ] -> bid
      | _ -> Alcotest.fail "expected one branch"
    in
    let profile = P.create () in
    record_n profile ~bid ~taken:(if taken then 20 else 0) ~total:20;
    P.apply profile prog;
    let p = List.assoc bid (branch_probs prog) in
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "observed %.1f clamps to %g"
         (if taken then 1.0 else 0.0)
         expect_near)
      expect_near p;
    Alcotest.(check bool) "strictly inside (0,1)" true (p > 0.0 && p < 1.0)
  in
  check_extreme ~taken:true ~expect_near:0.9999;
  check_extreme ~taken:false ~expect_near:0.0001;
  (* A custom clamp is honoured. *)
  let prog = one_branch_prog () in
  let bid =
    match branch_probs prog with
    | [ (bid, _) ] -> bid
    | _ -> Alcotest.fail "expected one branch"
  in
  let profile = P.create () in
  record_n profile ~bid ~taken:20 ~total:20;
  P.apply ~clamp:0.05 profile prog;
  Alcotest.(check (float 1e-12)) "custom clamp" 0.95
    (List.assoc bid (branch_probs prog))

let test_unreached_branch_keeps_static () =
  (* Two branches, only one executed: the unreached one keeps its
     annotation even with plenty of global samples. *)
  let src =
    {|
    int main(int n) {
      int acc = 0;
      if (n > 1000000) @0.125 { acc = 7; } else { acc = 3; }
      int i = 0;
      while (i < n) @0.9 { acc = acc + 1; i = i + 1; }
      return acc;
    }
    |}
  in
  let prog = compile src in
  let before = branch_probs prog in
  let profile = P.create () in
  let _ = Interp.Machine.run ~profile prog ~args:[| 100 |] in
  P.apply profile prog;
  let after = branch_probs prog in
  (* The @0.125 branch executed once (below min_samples) — kept; the
     loop branch executed 101 times — rewritten. *)
  let changed =
    List.filter
      (fun (bid, p) -> List.assoc bid before <> p)
      after
  in
  Alcotest.(check int) "exactly one branch rewritten" 1 (List.length changed);
  Alcotest.(check bool) "the 0.125 estimate survives" true
    (List.exists (fun (_, p) -> Float.abs (p -. 0.125) < 1e-9) after)

let test_record_apply_deterministic () =
  (* Identical runs record identical profiles; applying each to a fresh
     program yields identical IR. *)
  let src =
    "int main(int n) { int acc = 0; int i = 0; while (i < n) { if (i % 3 == 0) { acc = acc + 2; } i = i + 1; } return acc; }"
  in
  let round () =
    let prog = compile src in
    let profile = P.create () in
    let _ = Interp.Machine.run ~profile prog ~args:[| 157 |] in
    P.apply profile prog;
    (P.render profile, Ir.Printer.graph_to_string
       (Option.get (Ir.Program.find_function prog "main")))
  in
  let p1, ir1 = round () in
  let p2, ir2 = round () in
  Alcotest.(check string) "profiles identical" p1 p2;
  Alcotest.(check string) "applied IR identical" ir1 ir2;
  (* render/parse roundtrip preserves every count. *)
  let profile = P.parse p1 in
  Alcotest.(check string) "render∘parse = id" p1 (P.render profile)

let suite =
  [
    test "counts match behaviour" test_counts_match_behaviour;
    test "apply rewrites probabilities" test_apply_rewrites_probabilities;
    test "min samples threshold" test_min_samples_threshold;
    test "apply clamps" test_apply_clamps;
    test "min samples boundary (7 vs 8)" test_min_samples_boundary;
    test "clamp at exact 0.0/1.0" test_clamp_at_exact_extremes;
    test "unreached branch keeps static estimate" test_unreached_branch_keeps_static;
    test "record/apply determinism" test_record_apply_deterministic;
    test "profile-guided DBDS matches annotated" test_profile_guided_dbds_matches_annotated;
  ]
