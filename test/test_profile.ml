(** Profile collection tests: recorded branch frequencies match the
    program's actual behaviour, and profile-guided DBDS reproduces the
    decisions made with hand annotations. *)

open Helpers
module P = Interp.Profile

let profile_run ?fuel src args =
  let prog = compile src in
  let profile = P.create () in
  let _ = Interp.Machine.run ?fuel ~profile prog ~args:(Array.of_list args) in
  (prog, profile)

let test_counts_match_behaviour () =
  (* 100 iterations; i % 4 == 0 is true 25 times. *)
  let src =
    {|
    global int hits;
    int main(int n) {
      int i = 0;
      while (i < n) {
        if (i % 4 == 0) { hits = hits + 1; }
        i = i + 1;
      }
      return hits;
    }
    |}
  in
  let prog, profile = profile_run src [ 100 ] in
  let g = Option.get (Ir.Program.find_function prog "main") in
  (* Find the i%4 branch: the one with observed probability 0.25. *)
  let probs = ref [] in
  Ir.Graph.iter_blocks g (fun b ->
      match b.Ir.Graph.term with
      | Ir.Types.Branch _ -> (
          match P.observed profile ~fn:"main" ~bid:b.Ir.Graph.blk_id with
          | Some p -> probs := p :: !probs
          | None -> ())
      | _ -> ());
  Alcotest.(check bool) "loop branch ~0.99 observed" true
    (List.exists (fun p -> p > 0.95) !probs);
  Alcotest.(check bool) "mod-4 branch ~0.25 observed" true
    (List.exists (fun p -> Float.abs (p -. 0.25) < 0.02) !probs)

let test_apply_rewrites_probabilities () =
  let src =
    "int main(int n) { int acc = 0; int i = 0; while (i < n) { if (i % 10 == 0) { acc = acc + 1; } i = i + 1; } return acc; }"
  in
  let prog, profile = profile_run src [ 200 ] in
  P.apply profile prog;
  let g = Option.get (Ir.Program.find_function prog "main") in
  let found = ref false in
  Ir.Graph.iter_blocks g (fun b ->
      match b.Ir.Graph.term with
      | Ir.Types.Branch { prob; _ } ->
          if Float.abs (prob -. 0.1) < 0.02 then found := true
      | _ -> ());
  Alcotest.(check bool) "a branch carries the observed 0.1" true !found

let test_min_samples_threshold () =
  let profile = P.create () in
  P.record profile ~fn:"f" ~bid:3 ~taken_true:true;
  Alcotest.(check (option (float 1e-9))) "below threshold" None
    (P.observed profile ~fn:"f" ~bid:3);
  for _ = 1 to 10 do
    P.record profile ~fn:"f" ~bid:3 ~taken_true:true
  done;
  Alcotest.(check (option (float 1e-9))) "above threshold" (Some 1.0)
    (P.observed profile ~fn:"f" ~bid:3);
  Alcotest.(check int) "samples counted" 11 (P.samples profile)

let test_apply_clamps () =
  (* An always-taken branch must not become probability 1.0 exactly. *)
  let src =
    "int main(int n) { int i = 0; int acc = 0; while (i < n) { if (i >= 0) { acc = acc + 1; } i = i + 1; } return acc; }"
  in
  let prog, profile = profile_run src [ 50 ] in
  P.apply profile prog;
  Ir.Program.iter_functions prog (fun g ->
      Ir.Graph.iter_blocks g (fun b ->
          match b.Ir.Graph.term with
          | Ir.Types.Branch { prob; _ } ->
              Alcotest.(check bool) "clamped" true (prob > 0.0 && prob < 1.0)
          | _ -> ()))

let test_profile_guided_dbds_matches_annotated () =
  (* The same program, once with hand annotations and once profiled:
     DBDS should duplicate in both and preserve semantics. *)
  let body annotated =
    Printf.sprintf
      {|
      int main(int n) {
        int acc = 0;
        int i = 0;
        while (i < n) %s {
          int divisor;
          if (i %% 8 != 0) %s { divisor = 2; } else { divisor = i %% 7 + 3; }
          acc = (acc + (i * 3 + 1) / divisor) & 16777215;
          i = i + 1;
        }
        return acc;
      }
      |}
      (if annotated then "@0.99" else "")
      (if annotated then "@0.87" else "")
  in
  (* Annotated run. *)
  let annotated = compile (body true) in
  let _, s1 = Dbds.Driver.optimize_program annotated in
  let d1 = (Dbds.Driver.total_stats s1).Dbds.Driver.duplications_performed in
  (* Profile-guided run: interpret, apply, compile. *)
  let profiled = compile (body false) in
  let profile = P.create () in
  let _ = Interp.Machine.run ~profile profiled ~args:[| 500 |] in
  P.apply profile profiled;
  let _, s2 = Dbds.Driver.optimize_program profiled in
  let d2 = (Dbds.Driver.total_stats s2).Dbds.Driver.duplications_performed in
  Alcotest.(check bool) "annotated duplicates" true (d1 > 0);
  Alcotest.(check int) "profiled matches annotated" d1 d2;
  check_program_verifies profiled;
  Alcotest.(check int) "same results" (run_int annotated [ 300 ])
    (run_int profiled [ 300 ])

let suite =
  [
    test "counts match behaviour" test_counts_match_behaviour;
    test "apply rewrites probabilities" test_apply_rewrites_probabilities;
    test "min samples threshold" test_min_samples_threshold;
    test "apply clamps" test_apply_clamps;
    test "profile-guided DBDS matches annotated" test_profile_guided_dbds_matches_annotated;
  ]
