(** LICM tests: invariant hoisting, dependency chains, and the things it
    must not touch. *)

open Ir.Types
module G = Ir.Graph
open Helpers

let run_licm prog =
  let ctx = Opt.Phase.create ~program:prog () in
  Ir.Program.iter_functions prog (fun g -> ignore (Opt.Licm.run ctx g));
  check_program_verifies prog;
  prog

(* Count instructions matching [pred] that live inside some loop. *)
let count_in_loops prog fn pred =
  let g = Option.get (Ir.Program.find_function prog fn) in
  let dom = Ir.Dom.compute g in
  let loops = Ir.Loops.compute dom in
  G.fold_instrs g
    (fun n id ->
      if
        pred (G.kind g id)
        && G.block_of g id >= 0
        && Ir.Loops.depth loops (G.block_of g id) > 0
      then n + 1
      else n)
    0

let invariant_src =
  {|
  int main(int n, int k) {
    int acc = 0;
    int i = 0;
    while (i < n) {
      acc = acc + k * 37;
      i = i + 1;
    }
    return acc;
  }
  |}

let test_hoists_invariant_multiply () =
  let prog = run_licm (compile invariant_src) in
  Alcotest.(check int) "no multiply left in loop" 0
    (count_in_loops prog "main" (function Binop (Mul, _, _) -> true | _ -> false));
  Alcotest.(check int) "semantics" 370 (run_int prog [ 10; 1 ])

let test_hoists_dependency_chain () =
  let src =
    {|
    int main(int n, int k) {
      int acc = 0;
      int i = 0;
      while (i < n) {
        acc = acc + (k * 3 + 7) * (k * 3 + 7);
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let prog = run_licm (compile src) in
  Alcotest.(check int) "whole chain hoisted" 0
    (count_in_loops prog "main" (function
      | Binop ((Mul | Add), a, b) when a <> b -> true
      | Binop (Mul, _, _) -> true
      | _ -> false)
    (* the loop's own acc/i adds remain; count only multiplies *)
    |> fun n -> min n (count_in_loops prog "main" (function Binop (Mul, _, _) -> true | _ -> false)));
  Alcotest.(check int) "semantics" 200 (run_int prog [ 2; 1 ])

let test_does_not_hoist_variant () =
  let src =
    {|
    int main(int n) {
      int acc = 0;
      int i = 0;
      while (i < n) {
        acc = acc + i * 3;
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let prog = run_licm (compile src) in
  Alcotest.(check bool) "i*3 stays in the loop" true
    (count_in_loops prog "main" (function Binop (Mul, _, _) -> true | _ -> false)
    >= 1);
  Alcotest.(check int) "semantics" 135 (run_int prog [ 10 ])

let test_does_not_hoist_loads () =
  let src =
    {|
    class Box { int v; }
    global Box shared;
    global int sink;
    void mutate() { shared.v = shared.v + 1; }
    int main(int n) {
      shared = new Box(5);
      int acc = 0;
      int i = 0;
      while (i < n) {
        acc = acc + shared.v;
        mutate();
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let prog = compile src in
  let expected = run_int (Ir.Program.copy prog) [ 4 ] in
  let prog = run_licm prog in
  (* 5+6+7+8 = 26; a hoisted load would give 20. *)
  Alcotest.(check int) "loads not hoisted" expected (run_int prog [ 4 ]);
  Alcotest.(check int) "value" 26 expected

let test_division_speculation_is_safe () =
  (* k/0 inside a loop that never executes: hoisting the division must
     not fault (division is total in this IR). *)
  let src =
    {|
    int main(int n, int k) {
      int acc = 0;
      int i = 0;
      while (i < n) {
        acc = acc + 100 / k;
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let prog = run_licm (compile src) in
  Alcotest.(check int) "loop never runs, div by zero hoisted" 0
    (run_int prog [ 0; 0 ]);
  Alcotest.(check int) "normal case" 100 (run_int prog [ 2; 2 ])

let test_nested_loops () =
  let src =
    {|
    int main(int n, int k) {
      int acc = 0;
      int i = 0;
      while (i < n) {
        int j = 0;
        while (j < n) {
          acc = acc + k * 11;
          j = j + 1;
        }
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let prog = run_licm (compile src) in
  Alcotest.(check int) "hoisted out of both loops" 0
    (count_in_loops prog "main" (function Binop (Mul, _, _) -> true | _ -> false));
  Alcotest.(check int) "semantics" 99 (run_int prog [ 3; 1 ])

let test_pipeline_with_licm_differential () =
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      let prog = compile src in
      let prog' = Ir.Program.copy prog in
      ignore (Opt.Pipeline.optimize_program ~licm:true prog');
      check_program_verifies prog';
      let obs p =
        match
          Interp.Machine.run_full ~icache:Interp.Machine.no_icache
            ~fuel:2_000_000 p ~args:[| 3; -7 |]
        with
        | r, _, gs ->
            Interp.Machine.result_to_string r
            ^ String.concat ";"
                (List.map (fun (n, v) -> n ^ "=" ^ Interp.Machine.value_to_string v) gs)
        | exception Interp.Machine.Runtime_error m -> "fault " ^ m
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d" seed)
        (obs prog) (obs prog'))
    [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let suite =
  [
    test "hoists invariant multiply" test_hoists_invariant_multiply;
    test "hoists dependency chain" test_hoists_dependency_chain;
    test "keeps variant computation" test_does_not_hoist_variant;
    test "keeps memory reads" test_does_not_hoist_loads;
    test "division speculation safe" test_division_speculation_is_safe;
    test "nested loops" test_nested_loops;
    test "pipeline with licm preserves semantics" test_pipeline_with_licm_differential;
  ]
