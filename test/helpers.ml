(** Shared helpers for the test suites. *)

let check_verifies g =
  match Ir.Verifier.verify_result g with
  | Ok () -> ()
  | Error msg ->
      Alcotest.failf "IR verification failed: %s\n%s" msg
        (Ir.Printer.graph_to_string g)

let check_program_verifies prog =
  Ir.Program.iter_functions prog check_verifies

(** Compile source text, failing the test on frontend errors. *)
let compile src =
  match Lang.Frontend.compile src with
  | prog -> prog
  | exception Lang.Frontend.Error msg -> Alcotest.failf "frontend: %s" msg

(** Run a program's main on integer args, expecting an integer result. *)
let run_int ?icache ?fuel prog args =
  match Interp.Machine.run ?icache ?fuel prog ~args:(Array.of_list args) with
  | Some (Interp.Machine.VInt n), _ -> n
  | r, _ ->
      Alcotest.failf "expected int result, got %s"
        (Interp.Machine.result_to_string r)

(** Run and also return the stats. *)
let run_int_stats ?icache ?fuel prog args =
  match Interp.Machine.run ?icache ?fuel prog ~args:(Array.of_list args) with
  | Some (Interp.Machine.VInt n), stats -> (n, stats)
  | r, _ ->
      Alcotest.failf "expected int result, got %s"
        (Interp.Machine.result_to_string r)

(** Compile and run source on args. *)
let eval ?icache ?fuel src args = run_int ?icache ?fuel (compile src) args

let test name f = Alcotest.test_case name `Quick f

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)
