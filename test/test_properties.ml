(** Property-based tests (qcheck): random programs from {!Workloads.Progen}
    are pushed through every configuration, checking that the IR verifies
    and that observable behaviour is bit-identical to the unoptimized
    program.  A divergence in results, a verifier failure, or an
    unexpected exception fails with the generating seed, which reproduces
    the program deterministically. *)

open Helpers

let input_vectors = [ [| 0; 0 |]; [| 1; 7 |]; [| -9; 3 |]; [| 64; -2 |]; [| 5; 5 |] ]

(* Observable behaviour: the returned value plus the final globals. *)
let observe prog args =
  match
    Interp.Machine.run_full ~icache:Interp.Machine.no_icache ~fuel:2_000_000
      prog ~args
  with
  | r, _, globals ->
      Printf.sprintf "%s | %s"
        (Interp.Machine.result_to_string r)
        (String.concat ";"
           (List.map
              (fun (name, v) ->
                name ^ "=" ^ Interp.Machine.value_to_string v)
              globals))
  | exception Interp.Machine.Runtime_error m -> "fault: " ^ m
  | exception Interp.Machine.Out_of_fuel -> "fuel"

let compile_seed seed =
  let src = Workloads.Progen.generate ~seed () in
  match Lang.Frontend.compile src with
  | prog -> (src, prog)
  | exception Lang.Frontend.Error msg ->
      QCheck2.Test.fail_reportf "seed %d: frontend failed: %s\n%s" seed msg src

let check_config name config seed =
  let src, prog = compile_seed seed in
  let prog' = Ir.Program.copy prog in
  (try ignore (Dbds.Driver.optimize_program ~config prog')
   with e ->
     QCheck2.Test.fail_reportf "seed %d: %s optimization raised %s\n%s" seed
       name (Printexc.to_string e) src);
  Ir.Program.iter_functions prog' (fun g ->
      match Ir.Verifier.verify_result g with
      | Ok () -> ()
      | Error m ->
          QCheck2.Test.fail_reportf "seed %d: %s produced invalid IR (%s): %s"
            seed name (Ir.Graph.name g) m);
  List.iter
    (fun args ->
      let a = observe prog args and b = observe prog' args in
      if a <> b then
        QCheck2.Test.fail_reportf
          "seed %d: %s diverged on %s: %s vs %s\n%s" seed name
          (String.concat "," (Array.to_list (Array.map string_of_int args)))
          a b src)
    input_vectors;
  true

let seed_gen = QCheck2.Gen.int_bound 1_000_000

let prop_frontend_verifies =
  qtest ~count:150 "random programs compile and verify" seed_gen (fun seed ->
      let _, prog = compile_seed seed in
      Ir.Program.iter_functions prog (fun g ->
          match Ir.Verifier.verify_result g with
          | Ok () -> ()
          | Error m ->
              QCheck2.Test.fail_reportf "seed %d: invalid IR: %s" seed m);
      true)

let prop_baseline_preserves =
  qtest ~count:120 "baseline optimization preserves semantics" seed_gen
    (check_config "baseline" Dbds.Config.off)

let prop_dbds_preserves =
  qtest ~count:120 "dbds preserves semantics" seed_gen
    (check_config "dbds" Dbds.Config.dbds)

let prop_dupalot_preserves =
  qtest ~count:80 "dupalot preserves semantics" seed_gen
    (check_config "dupalot" Dbds.Config.dupalot)

let prop_paths_preserves =
  qtest ~count:80 "path duplication preserves semantics" seed_gen
    (check_config "dbds-paths" Dbds.Config.dbds_paths)

let prop_backtracking_preserves =
  qtest ~count:25 "backtracking preserves semantics" seed_gen
    (check_config "backtracking" Dbds.Config.backtracking)

(* Duplicating an arbitrary (merge, pred) pair — even ones the trade-off
   would reject — must preserve semantics and SSA form. *)
let prop_any_duplication_sound =
  qtest ~count:120 "arbitrary duplication is sound" seed_gen (fun seed ->
      let src, prog = compile_seed seed in
      let prog' = Ir.Program.copy prog in
      let rng = Random.State.make [| seed + 17 |] in
      Ir.Program.iter_functions prog' (fun g ->
          let merges =
            Ir.Graph.fold_blocks g
              (fun acc bid ->
                if
                  Ir.Graph.pred_count g bid >= 2
                  && not (List.mem bid (Ir.Graph.succs g bid))
                then bid :: acc
                else acc)
              []
          in
          List.iter
            (fun m ->
              if
                Ir.Graph.block_exists g m
                && List.length (Ir.Graph.preds g m) >= 2
                && Random.State.bool rng
              then begin
                let preds = Ir.Graph.preds g m in
                let p = List.nth preds (Random.State.int rng (List.length preds)) in
                (try ignore (Dbds.Transform.duplicate g ~merge:m ~pred:p)
                 with Dbds.Transform.Not_applicable _ -> ());
                match Ir.Verifier.verify_result g with
                | Ok () -> ()
                | Error msg ->
                    QCheck2.Test.fail_reportf
                      "seed %d: invalid IR after duplicating b%d->b%d: %s\n%s"
                      seed p m msg src
              end)
            merges);
      List.iter
        (fun args ->
          let a = observe prog args and b = observe prog' args in
          if a <> b then
            QCheck2.Test.fail_reportf "seed %d: duplication diverged: %s vs %s\n%s"
              seed a b src)
        input_vectors;
      true)

(* Loop-aware frequencies and cost estimates stay finite and sane. *)
let prop_estimates_sane =
  qtest ~count:100 "cost estimates are finite and non-negative" seed_gen
    (fun seed ->
      let _, prog = compile_seed seed in
      Ir.Program.iter_functions prog (fun g ->
          let s = Costmodel.Estimate.graph_size g in
          let c = Costmodel.Estimate.weighted_cycles g in
          if s < 0 then QCheck2.Test.fail_reportf "negative size %d" s;
          if not (Float.is_finite c) || c < 0.0 then
            QCheck2.Test.fail_reportf "bad cycles %f" c);
      true)

(* Dominator-tree invariants on random CFGs. *)
let prop_dominators_sane =
  qtest ~count:100 "dominator invariants" seed_gen (fun seed ->
      let _, prog = compile_seed seed in
      Ir.Program.iter_functions prog (fun g ->
          let dom = Ir.Dom.compute g in
          List.iter
            (fun b ->
              (match Ir.Dom.idom dom b with
              | Some p ->
                  if not (Ir.Dom.strictly_dominates dom p b) then
                    QCheck2.Test.fail_reportf
                      "idom b%d = b%d does not strictly dominate" b p
              | None ->
                  if b <> Ir.Graph.entry g then
                    QCheck2.Test.fail_reportf "non-entry b%d has no idom" b);
              (* every predecessor is dominated by.. no: every block is
                 dominated by the entry. *)
              if not (Ir.Dom.dominates dom (Ir.Graph.entry g) b) then
                QCheck2.Test.fail_reportf "entry does not dominate b%d" b)
            (Ir.Graph.rpo g));
      true)

(* The simulation tier never mutates observable behaviour. *)
let prop_simulation_is_pure =
  qtest ~count:80 "simulation does not change behaviour" seed_gen (fun seed ->
      let src, prog = compile_seed seed in
      let prog' = Ir.Program.copy prog in
      let ctx = Opt.Phase.create ~program:prog' () in
      Ir.Program.iter_functions prog' (fun g ->
          ignore (Dbds.Simulation.simulate ctx Dbds.Config.default g);
          match Ir.Verifier.verify_result g with
          | Ok () -> ()
          | Error m ->
              QCheck2.Test.fail_reportf "seed %d: simulation broke IR: %s" seed m);
      List.iter
        (fun args ->
          let a = observe prog args and b = observe prog' args in
          if a <> b then
            QCheck2.Test.fail_reportf "seed %d: simulation diverged\n%s" seed src)
        input_vectors;
      true)

let suite =
  [
    prop_frontend_verifies;
    prop_baseline_preserves;
    prop_dbds_preserves;
    prop_dupalot_preserves;
    prop_paths_preserves;
    prop_backtracking_preserves;
    prop_any_duplication_sound;
    prop_estimates_sane;
    prop_dominators_sane;
    prop_simulation_is_pure;
  ]
