(** Frontend tests: lexer, parser, type checker and SSA lowering. *)

open Lang
open Helpers

(* ---- lexer ---- *)

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let test_lex_operators () =
  let expected =
    Lexer.
      [
        LPAREN; RPAREN; PLUS; MINUS; STAR; SLASH; PERCENT; SHL; SHR; LE; GE;
        EQ; NE; AMPAMP; PIPEPIPE; AMP; PIPE; CARET; BANG; EOF;
      ]
  in
  Alcotest.(check int)
    "token count" (List.length expected)
    (List.length (toks "( ) + - * / % << >> <= >= == != && || & | ^ !"));
  List.iteri
    (fun i (a, b) ->
      if a <> b then Alcotest.failf "token %d mismatch: %s" i (Lexer.token_to_string b))
    (List.combine expected (toks "( ) + - * / % << >> <= >= == != && || & | ^ !"))

let test_lex_numbers_and_idents () =
  match toks "x1 42 3.25 foo_bar" with
  | [ IDENT "x1"; INT 42; FLOAT f; IDENT "foo_bar"; EOF ] ->
      Alcotest.(check (float 1e-9)) "float" 3.25 f
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_comments () =
  match toks "a // line comment\n b /* block \n comment */ c" with
  | [ IDENT "a"; IDENT "b"; IDENT "c"; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lex_error_position () =
  match Lexer.tokenize "x\n  $" with
  | exception Lexer.Lex_error (_, 2, 3) -> ()
  | exception Lexer.Lex_error (_, l, c) ->
      Alcotest.failf "wrong position %d:%d" l c
  | _ -> Alcotest.fail "expected a lex error"

(* ---- parser ---- *)

let test_parse_precedence () =
  (* 1 + 2 * 3 == 7 && true  parses as  ((1 + (2*3)) == 7) && true *)
  let p = Frontend.parse "bool f() { return 1 + 2 * 3 == 7 && true; }" in
  match (List.hd p.Ast.functions).Ast.fn_body with
  | [ Ast.SReturn (Some (Ast.EBinop (Ast.AndAlso, Ast.EBinop (Ast.Eq, _, _), _))) ]
    ->
      ()
  | _ -> Alcotest.fail "unexpected parse tree"

let test_parse_if_else_chain () =
  let p =
    Frontend.parse
      "int f(int x) { if (x > 0) @0.7 { return 1; } else if (x < 0) { return 2; } return 3; }"
  in
  match (List.hd p.Ast.functions).Ast.fn_body with
  | [ Ast.SIf { prob = Some pr; else_ = [ Ast.SIf _ ]; _ }; Ast.SReturn _ ] ->
      Alcotest.(check (float 1e-9)) "prob" 0.7 pr
  | _ -> Alcotest.fail "unexpected parse tree"

let test_parse_class_and_global () =
  let p =
    Frontend.parse
      "class A { int x; A next; } global int s; int f(A a) { return a.x; }"
  in
  Alcotest.(check int) "one class" 1 (List.length p.Ast.classes);
  Alcotest.(check int) "one global" 1 (List.length p.Ast.globals);
  match (List.hd p.Ast.classes).Ast.cd_fields with
  | [ (Ast.TInt, "x"); (Ast.TClass "A", "next") ] -> ()
  | _ -> Alcotest.fail "unexpected fields"

let test_parse_error_reports_position () =
  match Frontend.compile "int f() { return 1 + ; }" with
  | exception Frontend.Error msg ->
      Alcotest.(check bool) "mentions parse error" true
        (String.length msg > 0
        && String.sub msg 0 5 = "parse")
  | _ -> Alcotest.fail "expected parse error"

(* ---- typechecker ---- *)

let expect_type_error src =
  match Frontend.compile src with
  | exception Frontend.Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "is a type error: %s" msg)
        true
        (String.length msg >= 4 && String.sub msg 0 4 = "type")
  | _ -> Alcotest.fail "expected a type error"

let test_type_errors () =
  expect_type_error "int f() { return true; }";
  expect_type_error "int f() { bool b = 1; return 0; }";
  expect_type_error "int f(int x) { if (x) { } return 0; }";
  expect_type_error "int f() { return g(); }";
  expect_type_error "class A { int x; } int f(A a) { return a.y; }";
  expect_type_error "class A { int x; } int f() { A a = new A(); return 0; }";
  expect_type_error "int f(int x) { int x = 2; return x; }";
  expect_type_error "global int s; int f() { int s = 1; return s; }";
  expect_type_error "int f() { return 1 < true; }";
  expect_type_error "class A { int x; } int f(A a) { return a + 1; }"

let test_type_null_compat () =
  (* null is assignable to class types, comparable with ==/!=. *)
  let _ =
    compile
      "class A { int x; } int f(A a) { if (a == null) { return 0; } A b = null; b = a; return b.x; }"
  in
  ()

(* ---- lowering ---- *)

let test_lower_straightline () =
  Alcotest.(check int) "arith" 17 (eval "int main(int x) { return x * 2 + 3; }" [ 7 ])

let test_lower_if_phi () =
  let src = "int main(int x) { int p; if (x > 0) { p = x; } else { p = 0; } return 2 + p; }" in
  Alcotest.(check int) "true branch" 7 (eval src [ 5 ]);
  Alcotest.(check int) "false branch" 2 (eval src [ -5 ])

let test_lower_while_loop () =
  let src =
    "int main(int n) { int acc = 0; int i = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc; }"
  in
  Alcotest.(check int) "sum 0..9" 45 (eval src [ 10 ]);
  Alcotest.(check int) "empty loop" 0 (eval src [ 0 ])

let test_lower_loop_produces_phis () =
  let prog =
    compile
      "int main(int n) { int acc = 0; int i = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc; }"
  in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let phis = ref 0 in
  Ir.Graph.iter_instrs g (fun id ->
      match Ir.Graph.kind g id with Ir.Types.Phi _ -> incr phis | _ -> ());
  Alcotest.(check int) "two loop phis" 2 !phis

let test_lower_short_circuit () =
  let src =
    "global int calls;\n\
     bool bump() { calls = calls + 1; return true; }\n\
     int main(int x) { if (x > 0 && bump()) { } return calls; }"
  in
  Alcotest.(check int) "rhs evaluated" 1 (eval src [ 1 ]);
  Alcotest.(check int) "rhs skipped" 0 (eval src [ -1 ])

let test_lower_or_else () =
  let src =
    "global int calls;\n\
     bool bump() { calls = calls + 1; return false; }\n\
     int main(int x) { if (x > 0 || bump()) { } return calls; }"
  in
  Alcotest.(check int) "rhs skipped when lhs true" 0 (eval src [ 1 ]);
  Alcotest.(check int) "rhs evaluated when lhs false" 1 (eval src [ -1 ])

let test_lower_nested_control_flow () =
  let src =
    {|
    int main(int n) {
      int r = 0;
      int i = 0;
      while (i < n) {
        if (i % 2 == 0) {
          if (i % 3 == 0) { r = r + 10; } else { r = r + 1; }
        } else {
          while (r > 100) { r = r - 100; }
          r = r + 2;
        }
        i = i + 1;
      }
      return r;
    }
    |}
  in
  (* i=0:+10 i=1:+2 i=2:+1 i=3:+2 i=4:+1 i=5:+2 i=6:+10 → 28 *)
  Alcotest.(check int) "nested" 28 (eval src [ 7 ])

let test_lower_early_return_dead_code () =
  let src = "int main(int x) { return x; x = x + 1; return x; }" in
  Alcotest.(check int) "dead code skipped" 5 (eval src [ 5 ])

let test_lower_both_branches_return () =
  let src =
    "int main(int x) { if (x > 0) { return 1; } else { return 2; } }"
  in
  Alcotest.(check int) "pos" 1 (eval src [ 3 ]);
  Alcotest.(check int) "neg" 2 (eval src [ -3 ])

let test_lower_objects () =
  let src =
    {|
    class Point { int x; int y; }
    int main(int a) {
      Point p = new Point(a, 2 * a);
      p.y = p.y + 1;
      return p.x + p.y;
    }
    |}
  in
  Alcotest.(check int) "fields" 16 (eval src [ 5 ])

let test_lower_globals () =
  let src =
    {|
    global int s;
    void set(int v) { s = v; }
    int main(int x) { set(x * 2); return s + 1; }
    |}
  in
  Alcotest.(check int) "global store/load" 21 (eval src [ 10 ])

let test_lower_recursion () =
  let src = "int main(int n) { if (n <= 1) { return 1; } return n * main(n - 1); }" in
  Alcotest.(check int) "5! = 120" 120 (eval src [ 5 ])

let test_all_lowered_functions_verify () =
  let prog =
    compile
      {|
      class Node { int v; Node next; }
      global int total;
      int sum(Node n) {
        int acc = 0;
        while (n != null) @0.95 { acc = acc + n.v; n = n.next; }
        return acc;
      }
      Node build(int k) {
        Node head = null;
        int i = 0;
        while (i < k) { head = new Node(i, head); i = i + 1; }
        return head;
      }
      int main(int k) { total = sum(build(k)); return total; }
      |}
  in
  check_program_verifies prog;
  Alcotest.(check int) "list sum" 10 (run_int prog [ 5 ])

let suite =
  [
    test "lex operators" test_lex_operators;
    test "lex numbers and idents" test_lex_numbers_and_idents;
    test "lex comments" test_lex_comments;
    test "lex error position" test_lex_error_position;
    test "parse precedence" test_parse_precedence;
    test "parse if-else chain with prob" test_parse_if_else_chain;
    test "parse class and global" test_parse_class_and_global;
    test "parse error position" test_parse_error_reports_position;
    test "type errors" test_type_errors;
    test "null compatibility" test_type_null_compat;
    test "lower straightline" test_lower_straightline;
    test "lower if/phi" test_lower_if_phi;
    test "lower while loop" test_lower_while_loop;
    test "loop produces phis" test_lower_loop_produces_phis;
    test "short-circuit &&" test_lower_short_circuit;
    test "short-circuit ||" test_lower_or_else;
    test "nested control flow" test_lower_nested_control_flow;
    test "dead code after return" test_lower_early_return_dead_code;
    test "both branches return" test_lower_both_branches_return;
    test "objects" test_lower_objects;
    test "globals across calls" test_lower_globals;
    test "recursion" test_lower_recursion;
    test "lowered functions verify" test_all_lowered_functions_verify;
  ]
