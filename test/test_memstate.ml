(** Unit tests for the abstract memory state shared by read elimination
    and the DBDS read-elimination applicability check. *)

open Ir.Types
module M = Opt.Memstate
open Helpers

(* Fabricated value ids are fine: Memstate never dereferences them. *)
let obj_a = 100
let obj_b = 101
let v1 = 1
let v2 = 2

let test_load_records_availability () =
  let st, red = M.transfer M.empty v1 (Load (obj_a, "x")) in
  Alcotest.(check (option int)) "first load not redundant" None red;
  let _, red2 = M.transfer st v2 (Load (obj_a, "x")) in
  Alcotest.(check (option int)) "second load redundant with first" (Some v1)
    red2

let test_store_forwards () =
  let st, _ = M.transfer M.empty v1 (Store (obj_a, "x", 55)) in
  let _, red = M.transfer st v2 (Load (obj_a, "x")) in
  Alcotest.(check (option int)) "load forwarded from store" (Some 55) red

let test_store_kills_same_field_other_base () =
  let st, _ = M.transfer M.empty v1 (Load (obj_a, "x")) in
  (* A store to b.x may alias a.x. *)
  let st, _ = M.transfer st v2 (Store (obj_b, "x", 77)) in
  let _, red = M.transfer st 3 (Load (obj_a, "x")) in
  Alcotest.(check (option int)) "aliased store kills availability" None red

let test_store_keeps_other_fields () =
  let st, _ = M.transfer M.empty v1 (Load (obj_a, "y")) in
  let st, _ = M.transfer st v2 (Store (obj_b, "x", 77)) in
  let _, red = M.transfer st 3 (Load (obj_a, "y")) in
  Alcotest.(check (option int)) "distinct field survives" (Some v1) red

let test_call_kills_everything () =
  let st, _ = M.transfer M.empty v1 (Load (obj_a, "x")) in
  let st, _ = M.transfer st v2 (Load_global "g") in
  let st, _ = M.transfer st 3 (Call ("f", [||])) in
  let _, red_field = M.transfer st 4 (Load (obj_a, "x")) in
  let _, red_global = M.transfer st 5 (Load_global "g") in
  Alcotest.(check (option int)) "field killed" None red_field;
  Alcotest.(check (option int)) "global killed" None red_global

let test_global_store_forwards () =
  let st, _ = M.transfer M.empty v1 (Store_global ("g", 9)) in
  let _, red = M.transfer st v2 (Load_global "g") in
  Alcotest.(check (option int)) "global forwarded" (Some 9) red

let test_seed_new () =
  let st = M.seed_new M.empty ~fields:[ "x"; "y" ] obj_a [| 10; 11 |] in
  let _, rx = M.transfer st v1 (Load (obj_a, "x")) in
  let _, ry = M.transfer st v2 (Load (obj_a, "y")) in
  Alcotest.(check (option int)) "ctor arg x" (Some 10) rx;
  Alcotest.(check (option int)) "ctor arg y" (Some 11) ry

let test_pure_ops_transparent () =
  let st, _ = M.transfer M.empty v1 (Load (obj_a, "x")) in
  let st, _ = M.transfer st v2 (Binop (Add, 1, 2)) in
  let st, _ = M.transfer st 3 (Cmp (Lt, 1, 2)) in
  let _, red = M.transfer st 4 (Load (obj_a, "x")) in
  Alcotest.(check (option int)) "pure ops keep availability" (Some v1) red

let suite =
  [
    test "load records availability" test_load_records_availability;
    test "store forwards" test_store_forwards;
    test "aliased store kills" test_store_kills_same_field_other_base;
    test "other fields survive stores" test_store_keeps_other_fields;
    test "call kills everything" test_call_kills_everything;
    test "global store forwards" test_global_store_forwards;
    test "seed_new" test_seed_new;
    test "pure ops transparent" test_pure_ops_transparent;
  ]
