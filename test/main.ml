let () =
  Alcotest.run "dbds"
    [
      ("ir", Test_ir.suite);
      ("dom", Test_dom.suite);
      ("ssa-repair", Test_ssa_repair.suite);
      ("printer", Test_printer.suite);
      ("parse", Test_parse.suite);
      ("lang", Test_lang.suite);
      ("interp", Test_interp.suite);
      ("profile", Test_profile.suite);
      ("opt", Test_opt.suite);
      ("memstate", Test_memstate.suite);
      ("inline", Test_inline.suite);
      ("sccp", Test_sccp.suite);
      ("licm", Test_licm.suite);
      ("costmodel", Test_costmodel.suite);
      ("dbds", Test_dbds.suite);
      ("analyses", Test_analyses.suite);
      ("parallel", Test_parallel.suite);
      ("faults", Test_faults.suite);
      ("pathdup", Test_pathdup.suite);
      ("passes", Test_passes.suite);
      ("properties", Test_properties.suite);
      ("workloads", Test_workloads.suite);
      ("lab", Test_lab.suite);
      ("harness", Test_harness.suite);
      ("vm", Test_vm.suite);
      ("service", Test_service.suite);
      ("fleet", Test_fleet.suite);
      ("sim", Test_sim.suite);
      ("frontdoor", Test_frontdoor.suite);
    ]
