(** Printer and Graphviz-export tests: the dumps must mention every
    instruction and survive special characters; dot output must be
    structurally well-formed. *)

open Helpers
module G = Ir.Graph

let sample () =
  compile
    {|
    class A { int x; }
    global int gs;
    int main(int n) {
      A a = new A(n);
      int acc = 0;
      int i = 0;
      while (i < n) @0.9 {
        if (i % 2 == 0) { acc = acc + a.x; } else { gs = gs + 1; }
        i = i + 1;
      }
      return acc;
    }
    |}

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_printer_mentions_everything () =
  let prog = sample () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let text = Ir.Printer.graph_to_string g in
  G.iter_instrs g (fun id ->
      let needle = Printf.sprintf "v%d = " id in
      if not (contains ~sub:needle text) then
        Alcotest.failf "dump is missing %s" needle);
  G.iter_blocks g (fun bid ->
      let needle = Printf.sprintf "b%d:" bid in
      if not (contains ~sub:needle text) then
        Alcotest.failf "dump is missing %s" needle);
  Alcotest.(check bool) "mentions the branch probability" true
    (contains ~sub:"@0.90" text)

let test_printer_kinds () =
  let prog = sample () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let text = Ir.Printer.graph_to_string g in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("contains " ^ sub) true (contains ~sub text))
    [ "new A("; "load "; "gstore gs"; "phi ["; "cmp.lt"; "branch "; "return " ]

let test_dot_well_formed () =
  let prog = sample () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let dot = Ir.Dot.to_string g in
  Alcotest.(check bool) "digraph header" true (contains ~sub:"digraph" dot);
  Alcotest.(check bool) "closing brace" true
    (String.length dot > 0 && String.get dot (String.length dot - 2) = '}'
    || contains ~sub:"}" dot);
  (* Every reachable block appears as a node, and branch edges carry
     true/false labels. *)
  List.iter
    (fun bid ->
      Alcotest.(check bool)
        (Printf.sprintf "node b%d present" bid)
        true
        (contains ~sub:(Printf.sprintf "b%d [label=" bid) dot))
    (G.rpo g);
  Alcotest.(check bool) "true edge labelled" true (contains ~sub:"T 0.90" dot)

let test_dot_labels_balanced () =
  (* Every label string must keep its quotes balanced (escaping). *)
  let prog = sample () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let dot = Ir.Dot.to_string g in
  let quotes = String.fold_left (fun n c -> if c = '"' then n + 1 else n) 0 dot in
  Alcotest.(check int) "even number of quotes" 0 (quotes mod 2)

let test_dot_write_file () =
  let prog = sample () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let path = Filename.temp_file "dbds" ".dot" in
  Ir.Dot.write_file path g;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 100)

let suite =
  [
    test "dump mentions everything" test_printer_mentions_everything;
    test "dump kinds" test_printer_kinds;
    test "dot well-formed" test_dot_well_formed;
    test "dot labels balanced" test_dot_labels_balanced;
    test "dot write_file" test_dot_write_file;
  ]
