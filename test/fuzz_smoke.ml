(** Resilience smoke (satellite e): fuzz the containment contract over
    100 (graph seed × fault plan) pairs at jobs:1 and jobs:4.  Wired
    into [dune runtest]; any violation fails the build. *)

let () =
  let r = Harness.Fuzz.run () in
  Printf.printf "fuzz: %d pairs run, %d contained failures" r.Harness.Fuzz.pairs_run
    r.Harness.Fuzz.contained;
  if r.Harness.Fuzz.by_site <> [] then
    Printf.printf " (%s)"
      (String.concat ", "
         (List.map
            (fun (site, n) -> Printf.sprintf "%s x%d" site n)
            r.Harness.Fuzz.by_site));
  print_newline ();
  (match r.Harness.Fuzz.violations with
  | [] -> ()
  | vs ->
      List.iter (fun v -> Printf.eprintf "VIOLATION: %s\n" v) vs;
      Printf.eprintf "%d containment violation(s)\n" (List.length vs);
      exit 1);
  (* Artifact-store property (reduced count for runtest): torn writes,
     torn publications and read faults never crash; corrupted entries
     are evicted and recompiled; cold and warm passes match an uncached
     reference at jobs:1 and jobs:4. *)
  let s = Harness.Fuzz.run_service ~graph_seeds:(List.init 6 Fun.id) () in
  Printf.printf
    "fuzz service: %d pairs run, %d store hits, %d degraded-and-recovered\n"
    s.Harness.Fuzz.s_pairs_run s.Harness.Fuzz.s_store_hits
    s.Harness.Fuzz.s_recovered;
  (match s.Harness.Fuzz.s_violations with
  | [] -> ()
  | vs ->
      List.iter (fun v -> Printf.eprintf "VIOLATION: %s\n" v) vs;
      Printf.eprintf "%d service violation(s)\n" (List.length vs);
      exit 1);
  (* Tiered-VM property (reduced count for runtest): every engine run
     byte-identical to tier-0-only interpretation, deterministic in
     jobs. *)
  let t = Harness.Fuzz.run_tiered ~graph_seeds:(List.init 6 Fun.id) () in
  Printf.printf
    "fuzz tiered: %d pairs run, %d promotions, %d deopts, %d contained \
     compile failures\n"
    t.Harness.Fuzz.t_pairs_run t.Harness.Fuzz.t_promotions
    t.Harness.Fuzz.t_deopts t.Harness.Fuzz.t_compile_failures;
  match t.Harness.Fuzz.t_violations with
  | [] -> ()
  | vs ->
      List.iter (fun v -> Printf.eprintf "VIOLATION: %s\n" v) vs;
      Printf.eprintf "%d tiered violation(s)\n" (List.length vs);
      exit 1
;;
(* Workload-lab property (reduced progen count for runtest): the new
   tiers (copyprop-canon, lospre, condelim_dup; dbds as control) over
   the adversarial corpus — jobs 1-vs-4 byte identity with and without
   fault plans, paranoid preserves audits contain nothing, and the
   enables contracts of copyprop/lospre hide no consumer. *)
let l = Harness.Fuzz.run_lab ~progen_seeds:[ 0; 1 ] () in
Printf.printf
  "fuzz lab: %d identity pairs, %d paranoid runs, %d enables checks\n"
  l.Harness.Fuzz.l_pairs_run l.Harness.Fuzz.l_paranoid_runs
  l.Harness.Fuzz.l_enables_checked;
(match l.Harness.Fuzz.l_violations with
| [] -> ()
| vs ->
    List.iter (fun v -> Printf.eprintf "VIOLATION: %s\n" v) vs;
    Printf.eprintf "%d lab violation(s)\n" (List.length vs);
    exit 1)
;;
(* Frontdoor framing hardening (satellite): adversarial bytes through
   the pure decoders and garbage clients against a live simulated
   frontdoor — junk earns a structured rejection or a clean close,
   never an escaping exception or a wedged event loop. *)
let f = Harness.Fuzz.run_frontdoor () in
Printf.printf
  "fuzz frontdoor: %d decoder cases, %d server runs, %d structured \
   rejections\n"
  f.Harness.Fuzz.f_decoder_cases f.Harness.Fuzz.f_server_runs
  f.Harness.Fuzz.f_rejected;
match f.Harness.Fuzz.f_violations with
| [] -> ()
| vs ->
    List.iter (fun v -> Printf.eprintf "VIOLATION: %s\n" v) vs;
    Printf.eprintf "%d frontdoor violation(s)\n" (List.length vs);
    exit 1
