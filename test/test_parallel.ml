(** Tests for the multicore fan-out: {!Dbds.Parallel.map} semantics
    (order preservation, exception propagation) and the headline
    guarantee that [optimize_program ~jobs:k] is deterministic — printed
    graphs, per-function statistics and phase-context counters are
    byte-identical for any [k]. *)

open Helpers

exception Boom of int

let test_map_order () =
  let items = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let got = Dbds.Parallel.map ~jobs (fun x -> (x * x) + 1) items in
      let want = List.map (fun x -> (x * x) + 1) items in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        want got)
    [ 1; 2; 4; 7 ]

let test_map_empty_and_small () =
  Alcotest.(check (list int)) "empty" [] (Dbds.Parallel.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Dbds.Parallel.map ~jobs:4 succ [ 1 ]);
  (* More workers than items must not deadlock or duplicate work. *)
  Alcotest.(check (list int)) "jobs > n" [ 2; 3 ] (Dbds.Parallel.map ~jobs:16 succ [ 1; 2 ])

let test_map_exception () =
  List.iter
    (fun jobs ->
      match
        Dbds.Parallel.map ~jobs
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom x ->
          (* Earliest-indexed failure wins, deterministically. *)
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d earliest failure" jobs)
            2 x)
    [ 1; 4 ]

(* Fingerprint an optimized program: every printed graph plus the
   aggregate statistics and phase-context counters.  Two runs are
   considered identical iff their fingerprints are byte-identical. *)
let optimize_fingerprint ~jobs prog =
  let config = { Dbds.Config.default with Dbds.Config.mode = Dbds.Config.Dbds } in
  let ctx, per_fn = Dbds.Driver.optimize_program ~config ~jobs prog in
  let buf = Buffer.create 4096 in
  Ir.Program.iter_functions prog (fun g ->
      Buffer.add_string buf (Ir.Printer.graph_to_string g);
      Buffer.add_char buf '\n');
  let t = Dbds.Driver.total_stats per_fn in
  Buffer.add_string buf
    (Format.asprintf "totals: %a@." Dbds.Driver.pp_stats t);
  Buffer.add_string buf
    (Printf.sprintf "work=%d hits=%d misses=%d\n" ctx.Opt.Phase.work
       ctx.Opt.Phase.analysis_hits ctx.Opt.Phase.analysis_misses);
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Format.asprintf "%s: %a@." name Dbds.Driver.pp_stats s))
    per_fn;
  Buffer.contents buf

(* Satellite (c): across the whole workload registry, a sequential run
   and a 4-way parallel run of the optimizer must agree byte-for-byte. *)
let test_registry_determinism () =
  List.iter
    (fun suite ->
      List.iter
        (fun (b : Workloads.Suite.benchmark) ->
          let seq = optimize_fingerprint ~jobs:1 (Harness.Runner.compile_benchmark b) in
          let par = optimize_fingerprint ~jobs:4 (Harness.Runner.compile_benchmark b) in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s jobs:1 = jobs:4" suite.Workloads.Suite.suite_name
               b.Workloads.Suite.name)
            seq par)
        suite.Workloads.Suite.benchmarks)
    Workloads.Registry.all

(* Same property over random programs, with a backtracking config so the
   checkpoint/rollback journal is exercised under the domain fan-out. *)
let test_progen_determinism =
  qtest ~count:25 "progen: jobs:1 = jobs:3 (backtracking)"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let fingerprint jobs =
        let prog = compile (Workloads.Progen.generate ~seed ()) in
        let config =
          { Dbds.Config.default with Dbds.Config.mode = Dbds.Config.Backtracking }
        in
        let _ctx, per_fn = Dbds.Driver.optimize_program ~config ~jobs prog in
        let buf = Buffer.create 1024 in
        Ir.Program.iter_functions prog (fun g ->
            Buffer.add_string buf (Ir.Printer.graph_to_string g));
        Buffer.add_string buf
          (Format.asprintf "%a" Dbds.Driver.pp_stats
             (Dbds.Driver.total_stats per_fn));
        Buffer.contents buf
      in
      String.equal (fingerprint 1) (fingerprint 3))

let suite =
  [
    test "map preserves input order" test_map_order;
    test "map edge cases" test_map_empty_and_small;
    test "map re-raises earliest exception" test_map_exception;
    test "registry: jobs:1 = jobs:4" test_registry_determinism;
    test_progen_determinism;
  ]
