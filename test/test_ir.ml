(** Unit tests for the IR core: graph arena, builder, use lists, edge
    maintenance and the verifier. *)

open Ir.Types
module G = Ir.Graph
module B = Ir.Builder
open Helpers

(* Build the diamond of Figure 1: phi of (x, 0), return 2 + phi. *)
let figure1_graph () =
  let b = B.create ~name:"foo" ~n_params:1 () in
  let x = B.param b 0 in
  let zero = B.const b 0 in
  let cond = B.cmp b Gt x zero in
  let bt = B.new_block b in
  let bf = B.new_block b in
  let merge = B.new_block b in
  B.branch b cond ~if_true:bt ~if_false:bf;
  B.switch b bt;
  B.jump b merge;
  B.switch b bf;
  B.jump b merge;
  let phi = B.phi b merge [ x; zero ] in
  B.switch b merge;
  let two = B.const b 2 in
  let sum = B.binop b Add two phi in
  B.ret b sum;
  (B.finish b, phi, sum)

let test_build_diamond () =
  let g, phi, _ = figure1_graph () in
  Alcotest.(check int) "4 blocks" 4 (G.live_block_count g);
  let merge = G.block_of g phi in
  Alcotest.(check int) "merge has 2 preds" 2 (List.length (G.preds g merge));
  Alcotest.(check int) "entry has 2 succs" 2
    (List.length (G.succs g (G.entry g)))

let test_use_lists () =
  let g, phi, sum = figure1_graph () in
  (* phi is used once, by the add. *)
  (match G.uses g phi with
  | [ G.U_instr u ] -> Alcotest.(check int) "phi used by add" sum u
  | l -> Alcotest.failf "unexpected uses of phi: %d entries" (List.length l));
  (* sum is used by the return terminator. *)
  match G.uses g sum with
  | [ G.U_term _ ] -> ()
  | _ -> Alcotest.fail "sum should be used by the return terminator"

let test_replace_uses () =
  let g, phi, sum = figure1_graph () in
  let merge = G.block_of g phi in
  let c42 = G.prepend g merge (Const 42) in
  G.replace_uses g phi ~by:c42;
  (match G.kind g sum with
  | Binop (Add, _, v) -> Alcotest.(check int) "add reads 42" c42 v
  | _ -> Alcotest.fail "sum is not an add");
  Alcotest.(check (list pass)) "phi unused" [] (G.uses g phi);
  G.remove_instr g phi;
  check_verifies g

let test_set_kind_updates_uses () =
  let b = B.create ~n_params:0 () in
  let c1 = B.const b 1 in
  let c2 = B.const b 2 in
  let add = B.binop b Add c1 c2 in
  B.ret b add;
  let g = B.graph b in
  Alcotest.(check int) "c1 used once" 1 (List.length (G.uses g c1));
  G.set_kind g add (Binop (Add, c2, c2));
  Alcotest.(check int) "c1 unused after rewrite" 0 (List.length (G.uses g c1));
  Alcotest.(check int) "c2 used twice" 2 (List.length (G.uses g c2))

let test_redirect_edge () =
  let g, phi, _ = figure1_graph () in
  let merge = G.block_of g phi in
  (* Redirect the true-branch edge to a fresh block that jumps to merge. *)
  let entry = G.entry g in
  let bt = List.hd (G.succs g entry) in
  let fresh = G.add_block g in
  G.redirect_edge g ~from_block:entry ~old_target:bt ~new_target:fresh;
  G.set_term g fresh (Jump bt);
  check_verifies g;
  Alcotest.(check int) "merge still has 2 preds" 2
    (List.length (G.preds g merge))

let test_remove_pred_drops_phi_input () =
  let g, phi, sum = figure1_graph () in
  let merge = G.block_of g phi in
  let bf = List.nth (G.preds g merge) 1 in
  (* Make bf return instead of jumping to the merge. *)
  let c0 = G.append g bf (Const 0) in
  G.set_term g bf (Return (Some c0));
  (match G.kind g phi with
  | Phi [| v |] ->
      Alcotest.(check int) "remaining input is x" 0 (G.block_of g v)
  | _ -> Alcotest.fail "phi should have 1 input left");
  ignore sum;
  check_verifies g

let test_copy_is_deep () =
  let g, phi, _ = figure1_graph () in
  let g2 = G.copy g in
  let merge = G.block_of g phi in
  let c42 = G.prepend g merge (Const 42) in
  G.replace_uses g phi ~by:c42;
  G.remove_instr g phi;
  (* The copy still has the phi. *)
  Alcotest.(check bool) "copy keeps phi" true (G.instr_exists g2 phi);
  check_verifies g2

let test_verifier_catches_bad_phi_arity () =
  let g, phi, _ = figure1_graph () in
  (match G.kind g phi with
  | Phi inputs -> G.set_kind g phi (Phi (Array.sub inputs 0 1))
  | _ -> assert false);
  match Ir.Verifier.verify_result g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted a phi with wrong arity"

let test_verifier_catches_use_before_def () =
  let b = B.create ~n_params:0 () in
  let c1 = B.const b 1 in
  let next = B.new_block b in
  B.jump b next;
  B.switch b next;
  let add = B.binop b Add c1 c1 in
  B.ret b add;
  let g = B.graph b in
  (* Move the add into the entry block, before c1's block?  Instead,
     simulate a violation: make the entry return the add defined in a
     later block. *)
  G.set_term g (G.entry g) (Return (Some add));
  match Ir.Verifier.verify_result g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verifier accepted a dominance violation"

let test_rpo_order () =
  let g, _, _ = figure1_graph () in
  match G.rpo g with
  | entry :: rest ->
      Alcotest.(check int) "rpo starts at entry" (G.entry g) entry;
      Alcotest.(check int) "rpo covers all blocks" 3 (List.length rest)
  | [] -> Alcotest.fail "empty rpo"

let test_detach_attach () =
  let g, phi, sum = figure1_graph () in
  let merge = G.block_of g phi in
  G.detach g sum;
  Alcotest.(check int) "detached block is -1" (-1) (G.block_of g sum);
  G.attach g sum merge;
  Alcotest.(check int) "reattached to merge" merge (G.block_of g sum);
  check_verifies g

(* Arena free-list: a removed instruction's slot is recycled by the next
   insertion instead of growing the arena. *)
let test_free_list_reuse () =
  let g, phi, sum = figure1_graph () in
  G.set_recycle g true;
  let merge = G.block_of g phi in
  let c = G.prepend g merge (Const 7) in
  G.replace_uses g c ~by:phi;
  let cap = G.n_instrs g in
  G.remove_instr g c;
  Alcotest.(check int) "slot on free-list" 1 (G.free_instr_slots g);
  let c' = G.prepend g merge (Const 8) in
  Alcotest.(check int) "slot recycled" c c';
  Alcotest.(check int) "arena did not grow" cap (G.n_instrs g);
  Alcotest.(check int) "free-list drained" 0 (G.free_instr_slots g);
  G.replace_uses g phi ~by:c';
  ignore sum;
  check_verifies g

(* compact: dead slots vanish, live ids become dense, semantics and the
   printed structure survive (modulo renumbering). *)
let test_compact () =
  let g, phi, _sum = figure1_graph () in
  let merge = G.block_of g phi in
  (* Punch holes: add then remove a few instructions. *)
  let dead = List.init 5 (fun i -> G.prepend g merge (Const (100 + i))) in
  List.iter (fun id -> G.remove_instr g id) dead;
  let live0 = G.live_instr_count g in
  let text0 = Ir.Printer.graph_to_string g in
  let map = G.compact g in
  Alcotest.(check int) "live count unchanged" live0 (G.live_instr_count g);
  Alcotest.(check int) "arena is dense" live0 (G.n_instrs g);
  Alcotest.(check int) "free-list empty" 0 (G.free_instr_slots g);
  Array.iteri
    (fun old nw ->
      if nw >= 0 then
        Alcotest.(check bool)
          (Printf.sprintf "map %d -> %d in range" old nw)
          true (nw < live0))
    map;
  check_verifies g;
  (* Same graph up to renumbering: parse both prints and compare live
     structure counts. *)
  let g0 = Ir.Parse.parse_graph text0 in
  Alcotest.(check int) "blocks preserved" (G.live_block_count g0)
    (G.live_block_count g);
  Alcotest.(check int) "instrs preserved" (G.live_instr_count g0)
    (G.live_instr_count g)

(* print -> parse -> print reaches a fixed point after one parse: ids are
   remapped once, then the text is stable.  Run over the progen corpus so
   loopy/phi-heavy shapes are covered. *)
let test_print_parse_print_fixpoint () =
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      let prog = compile src in
      Ir.Program.iter_functions prog (fun g ->
          let t1 = Ir.Printer.graph_to_string (Ir.Parse.parse_graph (Ir.Printer.graph_to_string g)) in
          let t2 = Ir.Printer.graph_to_string (Ir.Parse.parse_graph t1) in
          Alcotest.(check string)
            (Printf.sprintf "seed %d: print/parse fixed point" seed)
            t1 t2))
    [ 0; 1; 2; 3; 11; 77; 345 ]

(* jobs must never change the compiled IR: byte-identical prints across
   jobs=1 and jobs=4 over the progen corpus. *)
let test_jobs_byte_identical () =
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      let print_at jobs =
        let prog = compile src in
        ignore (Dbds.Driver.optimize_program ~jobs prog);
        let buf = Buffer.create 1024 in
        Ir.Program.iter_functions prog (fun g ->
            Buffer.add_string buf (Ir.Printer.graph_to_string g));
        Buffer.contents buf
      in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: jobs=1 vs jobs=4" seed)
        (print_at 1) (print_at 4))
    [ 0; 5; 42; 345 ]

let suite =
  [
    test "build diamond" test_build_diamond;
    test "use lists" test_use_lists;
    test "replace uses" test_replace_uses;
    test "set_kind updates uses" test_set_kind_updates_uses;
    test "redirect edge" test_redirect_edge;
    test "remove pred drops phi input" test_remove_pred_drops_phi_input;
    test "copy is deep" test_copy_is_deep;
    test "verifier: bad phi arity" test_verifier_catches_bad_phi_arity;
    test "verifier: use before def" test_verifier_catches_use_before_def;
    test "rpo order" test_rpo_order;
    test "detach/attach" test_detach_attach;
    test "free-list reuse" test_free_list_reuse;
    test "compact" test_compact;
    test "print/parse/print fixed point" test_print_parse_print_fixpoint;
    test "jobs byte-identical (progen)" test_jobs_byte_identical;
  ]
