(** Workload suite tests: every benchmark compiles, verifies, terminates
    with a stable result, and the suites exhibit the structural properties
    the evaluation depends on (merges to duplicate, agreement across
    configurations). *)

open Helpers

let all_benchmarks () =
  List.concat_map
    (fun s ->
      List.map
        (fun b -> (s.Workloads.Suite.suite_name, b))
        s.Workloads.Suite.benchmarks)
    Workloads.Registry.all

let test_registry_complete () =
  Alcotest.(check int) "four suites" 4 (List.length Workloads.Registry.all);
  Alcotest.(check int) "paper benchmark counts" (10 + 12 + 10 + 14)
    (Workloads.Registry.total_benchmarks ());
  List.iter2
    (fun suite figure ->
      Alcotest.(check string)
        (suite.Workloads.Suite.suite_name ^ " figure")
        figure suite.Workloads.Suite.figure)
    Workloads.Registry.all
    [ "Figure 5"; "Figure 6"; "Figure 7"; "Figure 8" ]

let test_all_compile_and_verify () =
  List.iter
    (fun (suite, b) ->
      match Lang.Frontend.compile b.Workloads.Suite.source with
      | prog -> check_program_verifies prog
      | exception Lang.Frontend.Error msg ->
          Alcotest.failf "%s/%s does not compile: %s" suite
            b.Workloads.Suite.name msg)
    (all_benchmarks ())

let test_all_run_deterministically () =
  List.iter
    (fun (suite, b) ->
      let run () =
        let prog = Lang.Frontend.compile b.Workloads.Suite.source in
        let result, _ =
          Interp.Machine.run ~fuel:50_000_000 prog ~args:b.Workloads.Suite.args
        in
        Interp.Machine.result_to_string result
      in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s deterministic" suite b.Workloads.Suite.name)
        (run ()) (run ()))
    (all_benchmarks ())

let test_all_have_merges () =
  (* Every benchmark must offer the duplication transformation something
     to look at. *)
  List.iter
    (fun (suite, b) ->
      let prog = Lang.Frontend.compile b.Workloads.Suite.source in
      let merges = ref 0 in
      Ir.Program.iter_functions prog (fun g ->
          Ir.Graph.iter_blocks g (fun bid ->
              if Ir.Graph.pred_count g bid >= 2 then incr merges));
      if !merges = 0 then
        Alcotest.failf "%s/%s has no merges" suite b.Workloads.Suite.name)
    (all_benchmarks ())

let test_configurations_agree () =
  (* The evaluation's sanity invariant: baseline, DBDS and dupalot compute
     the same result on every benchmark (spot-check one per suite; the
     full sweep runs in bench/main.exe). *)
  List.iter
    (fun s ->
      let b = List.hd s.Workloads.Suite.benchmarks in
      let result config =
        let prog = Lang.Frontend.compile b.Workloads.Suite.source in
        let _ = Dbds.Driver.optimize_program ~config prog in
        let r, _ =
          Interp.Machine.run ~fuel:50_000_000 prog ~args:b.Workloads.Suite.args
        in
        Interp.Machine.result_to_string r
      in
      let base = result Dbds.Config.off in
      Alcotest.(check string)
        (b.Workloads.Suite.name ^ ": dbds agrees")
        base
        (result Dbds.Config.dbds);
      Alcotest.(check string)
        (b.Workloads.Suite.name ^ ": dupalot agrees")
        base
        (result Dbds.Config.dupalot))
    Workloads.Registry.all

let test_progen_deterministic () =
  let a = Workloads.Progen.generate ~seed:1234 () in
  let b = Workloads.Progen.generate ~seed:1234 () in
  Alcotest.(check string) "same seed, same program" a b;
  let c = Workloads.Progen.generate ~seed:1235 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let suite =
  [
    test "registry complete" test_registry_complete;
    test "all benchmarks compile and verify" test_all_compile_and_verify;
    test "all benchmarks run deterministically" test_all_run_deterministically;
    test "all benchmarks have merges" test_all_have_merges;
    test "configurations agree" test_configurations_agree;
    test "progen deterministic" test_progen_deterministic;
  ]
