(** IR text parser tests: hand-written fixtures, error reporting, and the
    print→parse round-trip property over random programs. *)

open Helpers
module G = Ir.Graph

let run_graph g args =
  match Interp.Machine.run_graph ~icache:Interp.Machine.no_icache g ~args with
  | Some (Interp.Machine.VInt n), _ -> Some n
  | None, _ -> None
  | Some _, _ -> Alcotest.fail "int expected"

let test_parse_fixture () =
  (* The Figure 1 diamond, written by hand. *)
  let text =
    {|fn foo(1 params) entry=b0
b0:
  v0 = param 0
  v1 = const 0
  v2 = cmp.gt v0, v1
  branch v2 ? b1 : b2  @0.50
b1:  ; preds: b0
  jump b3
b2:  ; preds: b0
  jump b3
b3:  ; preds: b1, b2
  v3 = phi [v0, v1]
  v4 = const 2
  v5 = add v4, v3
  return v5
|}
  in
  let g = Ir.Parse.parse_graph text in
  check_verifies g;
  Alcotest.(check string) "name" "foo" (G.name g);
  Alcotest.(check int) "params" 1 (G.n_params g);
  Alcotest.(check int) "blocks" 4 (G.live_block_count g);
  Alcotest.(check (option int)) "foo(5)" (Some 7) (run_graph g [| 5 |]);
  Alcotest.(check (option int)) "foo(-1)" (Some 2) (run_graph g [| -1 |])

let test_parse_all_kinds () =
  let text =
    {|fn k(2 params) entry=b0
b0:
  v0 = param 0
  v1 = param 1
  v2 = null
  v3 = new Box(v0, v1)
  v4 = load v3.a
  v5 = store v3.b <- v4
  v6 = gload counter
  v7 = gstore counter <- v4
  v8 = cmp.eq v3, v2
  v9 = not v8
  v10 = neg v0
  v11 = xor v10, v1
  v12 = call helper(v11)
  return v11
|}
  in
  let g = Ir.Parse.parse_graph text in
  (* All 13 instructions survive with their kinds. *)
  Alcotest.(check int) "instruction count" 13 (G.live_instr_count g);
  let kinds =
    G.fold_instrs g (fun acc id -> G.kind g id :: acc) [] |> List.rev_map (fun k ->
        Fmt.str "%a" Ir.Printer.pp_kind k)
  in
  Alcotest.(check bool) "has the store" true
    (List.exists (fun s -> String.length s >= 5 && String.sub s 0 5 = "store") kinds)

let test_parse_errors () =
  let expect_error text =
    match Ir.Parse.parse_graph text with
    | exception Ir.Parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected a parse error for %S" text
  in
  expect_error "b0:\n  return";
  (* no header *)
  expect_error "fn f(0 params) entry=b0\nb0:\n  v0 = bogus v1\n  return";
  expect_error "fn f(0 params) entry=b0\nb0:\n  v0 = const 1\n";
  (* missing terminator *)
  expect_error "fn f(0 params) entry=b0\nb0:\n  jump b9";
  (* undefined block *)
  expect_error
    "fn f(0 params) entry=b0\nb0:\n  v0 = const 1\n  v0 = const 2\n  return"
  (* duplicate value *)

let test_roundtrip_random_programs () =
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      let prog = compile src in
      let g = Option.get (Ir.Program.find_function prog "main") in
      let text = Ir.Printer.graph_to_string g in
      let g' =
        try Ir.Parse.parse_graph text
        with Ir.Parse.Parse_error m ->
          Alcotest.failf "seed %d: roundtrip parse failed: %s\n%s" seed m text
      in
      check_verifies g';
      Alcotest.(check int)
        (Printf.sprintf "seed %d: block count" seed)
        (G.live_block_count g) (G.live_block_count g');
      Alcotest.(check int)
        (Printf.sprintf "seed %d: instr count" seed)
        (G.live_instr_count g) (G.live_instr_count g');
      (* Calls reference helpers we did not parse, so compare only graphs
         that are call-free. *)
      let has_call =
        G.fold_instrs g
          (fun acc id ->
            acc || match G.kind g id with Ir.Types.Call _ -> true | _ -> false)
          false
      in
      if not has_call then
        List.iter
          (fun args ->
            Alcotest.(check (option int))
              (Printf.sprintf "seed %d: semantics" seed)
              (run_graph g args) (run_graph g' args))
          [ [| 0; 0 |]; [| 9; -4 |] ])
    [ 0; 1; 2; 3; 4; 5; 10; 42; 345; 777 ]

let test_roundtrip_after_duplication () =
  (* Round-trip a graph that went through DBDS (stresses phis inserted by
     SSA repair and dense/loopy shapes). *)
  let src = Workloads.Progen.generate ~seed:7 () in
  let prog = compile src in
  let _ = Dbds.Driver.optimize_program prog in
  Ir.Program.iter_functions prog (fun g ->
      let text = Ir.Printer.graph_to_string g in
      let g' = Ir.Parse.parse_graph text in
      check_verifies g';
      Alcotest.(check int) "instr count"
        (G.live_instr_count g) (G.live_instr_count g'))

let suite =
  [
    test "hand-written fixture" test_parse_fixture;
    test "all instruction kinds" test_parse_all_kinds;
    test "parse errors" test_parse_errors;
    test "roundtrip random programs" test_roundtrip_random_programs;
    test "roundtrip after duplication" test_roundtrip_after_duplication;
  ]
