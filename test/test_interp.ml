(** Interpreter tests: arithmetic semantics, objects, cost accounting and
    the i-cache model. *)

open Helpers
module M = Interp.Machine

let test_floor_division () =
  let src = "int main(int a, int b) { return a / b; }" in
  Alcotest.(check int) "7/2" 3 (eval src [ 7; 2 ]);
  Alcotest.(check int) "-7/2 floors" (-4) (eval src [ -7; 2 ]);
  Alcotest.(check int) "7/-2 floors" (-4) (eval src [ 7; -2 ]);
  Alcotest.(check int) "-7/-2" 3 (eval src [ -7; -2 ]);
  Alcotest.(check int) "x/0 = 0" 0 (eval src [ 42; 0 ])

let test_floor_rem () =
  let src = "int main(int a, int b) { return a % b; }" in
  Alcotest.(check int) "7%2" 1 (eval src [ 7; 2 ]);
  Alcotest.(check int) "-7%2 follows divisor" 1 (eval src [ -7; 2 ]);
  Alcotest.(check int) "7%-2" (-1) (eval src [ 7; -2 ]);
  Alcotest.(check int) "x%0 = 0" 0 (eval src [ 42; 0 ])

let test_division_shift_equivalence () =
  (* Floor division makes x / 2^k == x >> k for every x: the soundness
     basis of the strength-reduction AC. *)
  let div = "int main(int x) { return x / 8; }" in
  let shr = "int main(int x) { return x >> 3; }" in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "x=%d" x)
        (eval div [ x ]) (eval shr [ x ]))
    [ 0; 1; 7; 8; 9; -1; -7; -8; -9; 1000001; -1000001 ]

let test_shift_masking () =
  let src = "int main(int a, int b) { return a << b; }" in
  Alcotest.(check int) "shift by 64 masks to 0" 5 (eval src [ 5; 64 ]);
  Alcotest.(check int) "shift by 1" 10 (eval src [ 5; 1 ])

let test_null_dereference_faults () =
  let src = "class A { int x; } int main() { A a = null; return a.x; }" in
  match eval src [] with
  | exception M.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error"

let test_reference_equality () =
  let src =
    {|
    class A { int x; }
    int main() {
      A a = new A(1);
      A b = new A(1);
      A c = a;
      int r = 0;
      if (a == c) { r = r + 1; }
      if (a != b) { r = r + 2; }
      if (a != null) { r = r + 4; }
      return r;
    }
    |}
  in
  Alcotest.(check int) "reference semantics" 7 (eval src [])

let test_out_of_fuel () =
  let src = "int main() { while (true) { } return 0; }" in
  match eval ~fuel:1000 src [] with
  | exception M.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_cycles_charged () =
  let prog = compile "int main(int x) { return x / 3; }" in
  let _, stats = run_int_stats ~icache:M.no_icache prog [ 9 ] in
  (* param(0) + const(0?)… at minimum the division's 32 cycles. *)
  Alcotest.(check bool) "division cost charged" true (stats.M.cycles >= 32.0)

let test_cheaper_after_strength_reduction_shape () =
  (* A shift-based function must charge fewer cycles than a div-based one
     for the same result: the cost model orders them correctly. *)
  let div_prog = compile "int main(int x) { return x / 8; }" in
  let shr_prog = compile "int main(int x) { return x >> 3; }" in
  let rd, sd = run_int_stats ~icache:M.no_icache div_prog [ 1024 ] in
  let rs, ss = run_int_stats ~icache:M.no_icache shr_prog [ 1024 ] in
  Alcotest.(check int) "same result" rd rs;
  Alcotest.(check bool) "shift cheaper" true (ss.M.cycles < sd.M.cycles)

let test_icache_charges_misses () =
  let src =
    "int main(int n) { int i = 0; int acc = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc; }"
  in
  let prog = compile src in
  let _, cold = run_int_stats ~icache:M.default_icache prog [ 100 ] in
  let _, warm = run_int_stats ~icache:M.no_icache prog [ 100 ] in
  Alcotest.(check bool) "icache adds misses" true (cold.M.icache_misses > 0);
  Alcotest.(check bool) "icache adds cycles" true (cold.M.cycles > warm.M.cycles);
  (* A hot loop that fits in cache misses each block at most once. *)
  Alcotest.(check bool) "loop blocks cached" true (cold.M.icache_misses <= 8)

let test_icache_capacity_evictions () =
  (* A function body larger than the cache capacity keeps missing. *)
  let stmts = Buffer.create 1024 in
  for i = 0 to 63 do
    Buffer.add_string stmts
      (Printf.sprintf
         "if (x > %d) { acc = acc + %d; } else { acc = acc - %d; }\n" i i i)
  done;
  let src =
    Printf.sprintf
      "int main(int x) { int acc = 0; int k = 0; while (k < 4) { %s k = k + 1; } return acc; }"
      (Buffer.contents stmts)
  in
  let prog = compile src in
  let tiny = { M.default_icache with M.capacity = 64 } in
  let huge = { M.default_icache with M.capacity = 1_000_000 } in
  let _, small_cache = run_int_stats ~icache:tiny prog [ 10 ] in
  let _, big_cache = run_int_stats ~icache:huge prog [ 10 ] in
  Alcotest.(check bool) "small cache misses more" true
    (small_cache.M.icache_misses > big_cache.M.icache_misses)

let test_allocation_stats () =
  let src =
    "class A { int x; } int main(int n) { int i = 0; int s = 0; while (i < n) { A a = new A(i); s = s + a.x; i = i + 1; } return s; }"
  in
  let prog = compile src in
  let r, stats = run_int_stats prog [ 10 ] in
  Alcotest.(check int) "sum" 45 r;
  Alcotest.(check int) "10 allocations" 10 stats.M.allocations

let test_call_stats () =
  let src =
    "int helper(int x) { return x + 1; } int main(int n) { return helper(helper(n)); }"
  in
  let _, stats = run_int_stats (compile src) [ 1 ] in
  Alcotest.(check int) "2 calls" 2 stats.M.calls

let suite =
  [
    test "floor division" test_floor_division;
    test "floor remainder" test_floor_rem;
    test "div/shift equivalence" test_division_shift_equivalence;
    test "shift masking" test_shift_masking;
    test "null dereference faults" test_null_dereference_faults;
    test "reference equality" test_reference_equality;
    test "out of fuel" test_out_of_fuel;
    test "cycles charged" test_cycles_charged;
    test "cost model orders div/shift" test_cheaper_after_strength_reduction_shape;
    test "icache charges misses" test_icache_charges_misses;
    test "icache capacity evictions" test_icache_capacity_evictions;
    test "allocation stats" test_allocation_stats;
    test "call stats" test_call_stats;
  ]
