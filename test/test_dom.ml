(** Tests for dominators, dominance frontiers, loops and frequencies. *)

open Ir.Types
module G = Ir.Graph
module B = Ir.Builder
open Helpers

(* A diamond with a loop around it:
   entry -> header; header -> (body | exit); body -> (bt | bf);
   bt -> latch; bf -> latch; latch -> header *)
let loop_diamond () =
  let b = B.create ~n_params:1 () in
  let x = B.param b 0 in
  let header = B.new_block b in
  let body = B.new_block b in
  let exit_b = B.new_block b in
  let bt = B.new_block b in
  let bf = B.new_block b in
  let latch = B.new_block b in
  B.jump b header;
  B.switch b header;
  let zero = B.const b 0 in
  let c = B.cmp b Gt x zero in
  B.branch ~prob:0.9 b c ~if_true:body ~if_false:exit_b;
  B.switch b body;
  let c2 = B.cmp b Lt x zero in
  B.branch b c2 ~if_true:bt ~if_false:bf;
  B.switch b bt;
  B.jump b latch;
  B.switch b bf;
  B.jump b latch;
  B.switch b latch;
  B.jump b header;
  B.switch b exit_b;
  B.ret b x;
  (B.finish b, header, body, bt, bf, latch, exit_b)

let test_idom_chain () =
  let g, header, body, bt, bf, latch, exit_b = loop_diamond () in
  let dom = Ir.Dom.compute g in
  let idom b = Option.get (Ir.Dom.idom dom b) in
  Alcotest.(check int) "idom(header) = entry" (G.entry g) (idom header);
  Alcotest.(check int) "idom(body) = header" header (idom body);
  Alcotest.(check int) "idom(exit) = header" header (idom exit_b);
  Alcotest.(check int) "idom(bt) = body" body (idom bt);
  Alcotest.(check int) "idom(bf) = body" body (idom bf);
  Alcotest.(check int) "idom(latch) = body" body (idom latch)

let test_dominates () =
  let g, header, body, bt, _, latch, exit_b = loop_diamond () in
  let dom = Ir.Dom.compute g in
  Alcotest.(check bool) "entry dominates all" true
    (Ir.Dom.dominates dom (G.entry g) latch);
  Alcotest.(check bool) "header dominates exit" true
    (Ir.Dom.dominates dom header exit_b);
  Alcotest.(check bool) "bt does not dominate latch" false
    (Ir.Dom.dominates dom bt latch);
  Alcotest.(check bool) "body dominates latch" true
    (Ir.Dom.dominates dom body latch);
  Alcotest.(check bool) "reflexive" true (Ir.Dom.dominates dom body body);
  Alcotest.(check bool) "not strict reflexive" false
    (Ir.Dom.strictly_dominates dom body body)

let test_children_partition () =
  let g, _, _, _, _, _, _ = loop_diamond () in
  let dom = Ir.Dom.compute g in
  (* Every non-entry reachable block appears exactly once as a child. *)
  let count = Hashtbl.create 8 in
  List.iter
    (fun b ->
      List.iter
        (fun c ->
          Hashtbl.replace count c (1 + Option.value ~default:0 (Hashtbl.find_opt count c)))
        (Ir.Dom.children dom b))
    (G.rpo g);
  List.iter
    (fun b ->
      if b <> G.entry g then
        Alcotest.(check int)
          (Printf.sprintf "b%d has one tree parent" b)
          1
          (Option.value ~default:0 (Hashtbl.find_opt count b)))
    (G.rpo g)

let test_frontiers () =
  let g, header, body, bt, bf, latch, _ = loop_diamond () in
  let dom = Ir.Dom.compute g in
  let df = Ir.Dom.frontiers dom in
  Alcotest.(check bool) "latch in DF(bt)" true (List.mem latch df.(bt));
  Alcotest.(check bool) "latch in DF(bf)" true (List.mem latch df.(bf));
  Alcotest.(check bool) "header in DF(latch)" true (List.mem header df.(latch));
  Alcotest.(check bool) "header in DF(body)" true (List.mem header df.(body))

let test_iterated_frontier () =
  let g, header, _, bt, bf, latch, _ = loop_diamond () in
  let dom = Ir.Dom.compute g in
  let df = Ir.Dom.frontiers dom in
  let idf = Ir.Dom.iterated_frontier dom ~frontiers:df [ bt; bf ] in
  Alcotest.(check bool) "latch in IDF" true (List.mem latch idf);
  Alcotest.(check bool) "header in IDF (iterated)" true (List.mem header idf);
  ignore g

let test_loops () =
  let g, header, body, _, _, latch, exit_b = loop_diamond () in
  let dom = Ir.Dom.compute g in
  let loops = Ir.Loops.compute dom in
  Alcotest.(check int) "one loop" 1 (List.length (Ir.Loops.loops loops));
  Alcotest.(check bool) "header detected" true (Ir.Loops.is_header loops header);
  Alcotest.(check int) "body depth 1" 1 (Ir.Loops.depth loops body);
  Alcotest.(check int) "latch depth 1" 1 (Ir.Loops.depth loops latch);
  Alcotest.(check int) "exit depth 0" 0 (Ir.Loops.depth loops exit_b);
  ignore g

let test_nested_loop_depth () =
  let prog =
    compile
      {|
      int main(int n) {
        int acc = 0;
        int i = 0;
        while (i < n) {
          int j = 0;
          while (j < n) {
            acc = acc + 1;
            j = j + 1;
          }
          i = i + 1;
        }
        return acc;
      }
    |}
  in
  let g = Option.get (Ir.Program.find_function prog "main") in
  let dom = Ir.Dom.compute g in
  let loops = Ir.Loops.compute dom in
  Alcotest.(check int) "two loops" 2 (List.length (Ir.Loops.loops loops));
  let max_depth =
    List.fold_left (fun acc b -> max acc (Ir.Loops.depth loops b)) 0 (G.rpo g)
  in
  Alcotest.(check int) "max nesting 2" 2 max_depth

let test_frequency_loop_scaling () =
  let g, header, _, _, _, _, exit_b = loop_diamond () in
  let dom = Ir.Dom.compute g in
  let loops = Ir.Loops.compute dom in
  let freq = Ir.Frequency.compute dom loops in
  Alcotest.(check bool) "header hotter than entry" true
    (Ir.Frequency.frequency freq header > Ir.Frequency.frequency freq (G.entry g));
  Alcotest.(check bool) "exit colder than header" true
    (Ir.Frequency.frequency freq exit_b < Ir.Frequency.frequency freq header);
  (* Relative frequency is in (0, 1]. *)
  List.iter
    (fun b ->
      let r = Ir.Frequency.relative freq b in
      Alcotest.(check bool) "relative in range" true (r >= 0.0 && r <= 1.0))
    (G.rpo g)

let test_frequency_branch_split () =
  let b = B.create ~n_params:1 () in
  let x = B.param b 0 in
  let zero = B.const b 0 in
  let c = B.cmp b Gt x zero in
  let bt = B.new_block b in
  let bf = B.new_block b in
  B.branch ~prob:0.9 b c ~if_true:bt ~if_false:bf;
  B.switch b bt;
  B.ret b x;
  B.switch b bf;
  B.ret b zero;
  let g = B.finish b in
  let dom = Ir.Dom.compute g in
  let loops = Ir.Loops.compute dom in
  let freq = Ir.Frequency.compute dom loops in
  Alcotest.(check (float 1e-9)) "true branch 0.9" 0.9
    (Ir.Frequency.frequency freq bt);
  Alcotest.(check (float 1e-9)) "false branch 0.1" 0.1
    (Ir.Frequency.frequency freq bf)

let suite =
  [
    test "idom chain" test_idom_chain;
    test "dominates" test_dominates;
    test "dom-tree children partition" test_children_partition;
    test "dominance frontiers" test_frontiers;
    test "iterated frontier" test_iterated_frontier;
    test "loop detection" test_loops;
    test "nested loop depth" test_nested_loop_depth;
    test "frequency: loop scaling" test_frequency_loop_scaling;
    test "frequency: branch split" test_frequency_branch_split;
  ]
