(** Cost model tests, including the paper's published data points
    (division 32 cycles, shift 1, allocation 8) and the Figure 4
    mechanism (frequency-weighted estimate drops by p x mul-cost after
    duplication). *)

open Ir.Types
module B = Ir.Builder
open Helpers

let test_published_data_points () =
  (* §4.1: "the original division needs 32 cycles ... the shift only
     takes 1" — CS = 31. *)
  Alcotest.(check (float 1e-9)) "div 32" 32.0
    (Costmodel.Cost.cycles_of_kind (Binop (Div, 0, 1)));
  Alcotest.(check (float 1e-9)) "shr 1" 1.0
    (Costmodel.Cost.cycles_of_kind (Binop (Shr, 0, 1)));
  (* Listing 7: AbstractNewObjectNode is CYCLES_8 / SIZE_8. *)
  Alcotest.(check (float 1e-9)) "new 8 cycles" 8.0
    (Costmodel.Cost.cycles_of_kind (New ("A", [||])));
  Alcotest.(check bool) "new size >= 8" true
    (Costmodel.Cost.size_of_kind (New ("A", [||])) >= 8)

let test_phi_is_free () =
  Alcotest.(check (float 1e-9)) "phi 0 cycles" 0.0
    (Costmodel.Cost.cycles_of_kind (Phi [| 0; 1 |]))

let test_graph_size_accumulates () =
  let b = B.create ~n_params:1 () in
  let x = B.param b 0 in
  let c = B.const b 3 in
  let m = B.binop b Mul x c in
  B.ret b m;
  let g = B.finish b in
  let expected =
    Costmodel.Cost.size_of_kind (Param 0)
    + Costmodel.Cost.size_of_kind (Const 3)
    + Costmodel.Cost.size_of_kind (Binop (Mul, x, c))
    + (Costmodel.Cost.of_term (Return (Some m))).Costmodel.Cost.size
  in
  Alcotest.(check int) "sum of parts" expected (Costmodel.Estimate.graph_size g)

(* Figure 4: two predecessors (90% / 10%) merging into a block with a
   multiply by phi; on the hot predecessor the operand is the constant 3,
   so after duplication the multiply folds there and the weighted
   estimate drops by 0.9 x cycles(Mul) = 1.8. *)
let figure4_graph () =
  let b = B.create ~name:"fig4" ~n_params:1 () in
  let p0 = B.param b 0 in
  let zero = B.const b 0 in
  let cond = B.cmp b Gt p0 zero in
  let hot = B.new_block b in
  let cold = B.new_block b in
  let merge = B.new_block b in
  B.branch ~prob:0.9 b cond ~if_true:hot ~if_false:cold;
  B.switch b hot;
  let three = B.const b 3 in
  B.jump b merge;
  B.switch b cold;
  B.jump b merge;
  let phi = B.phi b merge [ three; p0 ] in
  B.switch b merge;
  let three2 = B.const b 3 in
  let mul = B.binop b Mul phi three2 in
  let st = B.gstore b "sink" mul in
  ignore st;
  B.ret b mul;
  B.finish b

let test_figure4_weighted_estimate_drops () =
  let g = figure4_graph () in
  let before = Costmodel.Estimate.weighted_cycles g in
  let prog = Ir.Program.of_graph ~globals:[ "sink" ] g in
  let ctx = Opt.Phase.create ~program:prog () in
  let stats = Dbds.Driver.optimize_graph ctx g in
  let after = Costmodel.Estimate.weighted_cycles g in
  Alcotest.(check bool) "a duplication happened" true
    (stats.Dbds.Driver.duplications_performed >= 1);
  let saved = before -. after in
  (* 0.9 x Mul(2 cycles) = 1.8, the paper's exact number.  Other folding
     may add to it, so check the 1.8 is at least realized. *)
  Alcotest.(check bool)
    (Printf.sprintf "saved %.2f >= 1.8" saved)
    true (saved >= 1.8 -. 1e-6)

let test_weighted_cycles_scales_with_loops () =
  let hot =
    compile
      "int main(int n) { int acc = 0; int i = 0; while (i < n) { acc = acc + i * 3; i = i + 1; } return acc; }"
  in
  let flat = compile "int main(int n) { return n * 3 + 1; }" in
  let wc p =
    Costmodel.Estimate.weighted_cycles
      (Option.get (Ir.Program.find_function p "main"))
  in
  Alcotest.(check bool) "loop body weighted heavier" true (wc hot > wc flat)

let suite =
  [
    test "published data points" test_published_data_points;
    test "phi is free" test_phi_is_free;
    test "graph size accumulates" test_graph_size_accumulates;
    test "figure 4: weighted estimate drops by 1.8" test_figure4_weighted_estimate_drops;
    test "weighted cycles scale with loops" test_weighted_cycles_scales_with_loops;
  ]
