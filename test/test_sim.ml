(** The deterministic whole-system simulator: same-seed replay, chaos
    sweeps over the full service stack, the end-to-end invariant
    (byte-identical IR or a clean contained failure), the shrinker on a
    deliberately injected corruption, seeded client backoff, monotonic
    deadlines under wall-clock jumps, and the stale-socket probe. *)

open Helpers
module F = Dbds.Faults
module H = Simtest.Harness
module Sim = Simtest.Sched
module Simio = Simtest.Simio

let fault ?fn site hit = { F.seed = 0; site; hit; fn }

(* The whole point: a seed names a schedule.  Two runs of the same
   seed execute the same events at the same virtual times and answer
   every request identically; a different seed takes a different
   schedule. *)
let test_same_seed_same_trace () =
  let spec = H.builder ~seed:42 () in
  let a = H.run spec in
  let b = H.run spec in
  Alcotest.(check string) "same trace hash" a.H.r_trace_hash b.H.r_trace_hash;
  Alcotest.(check int) "same event count" a.H.r_events b.H.r_events;
  Alcotest.(check bool) "same outcomes" true (a.H.r_outcomes = b.H.r_outcomes);
  Alcotest.(check (list (pair string int)))
    "same outcome histogram" a.H.r_counts b.H.r_counts;
  let c = H.run (H.with_seed 43 spec) in
  Alcotest.(check bool) "different seed takes a different schedule" true
    (c.H.r_trace_hash <> a.H.r_trace_hash)

(* Seeded chaos — drops, latency spikes, partitions, slow disks, clock
   jumps — must never produce a violation: every request ends in the
   oracle's bytes or a clean, visible failure. *)
let test_chaos_sweep_holds_invariant () =
  let results = H.run_seeds ~seeds:3 (H.builder ~seed:100 ()) in
  List.iter
    (fun (r : H.result) ->
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d clean" r.H.r_spec.H.seed)
        []
        (List.map (fun v -> v.H.vio_kind ^ ": " ^ v.H.vio_detail) r.H.r_violations);
      Alcotest.(check bool) "every request accounted for" true
        (List.fold_left (fun acc (_, n) -> acc + n) 0 r.H.r_counts
        = r.H.r_spec.H.clients * r.H.r_spec.H.requests_per_client))
    results

(* The deliberate bug the checker exists for: [store.corrupt] mutates
   a published artifact under a valid checksum.  The invariant checker
   must flag it, the shrinker must reduce the schedule, and the bundle
   must replay to the identical trace. *)
let test_corrupt_shrinks_and_replays () =
  let spec =
    H.builder ~seed:7 ()
    |> H.with_fault (fault ~fn:"main" F.Store_corrupt 1)
  in
  let r = H.run spec in
  Alcotest.(check bool) "corruption violates" true (H.violating r);
  Alcotest.(check bool) "flagged as wrong-artifact" true
    (List.exists (fun v -> v.H.vio_kind = "wrong-artifact") r.H.r_violations);
  match H.shrink spec with
  | None -> Alcotest.fail "shrinker lost the violation"
  | Some (min_spec, kind) ->
      Alcotest.(check string) "shrunk to the same kind" "wrong-artifact" kind;
      Alcotest.(check bool) "topology minimized" true
        (min_spec.H.clients = 1 && min_spec.H.workers = 1
        && min_spec.H.chaos = 0
        && List.length min_spec.H.faults = 1);
      let min_r = H.run min_spec in
      Alcotest.(check bool) "minimal spec still violates" true
        (H.violating min_r);
      let dir = Filename.temp_dir "dbds-test-sim" ".bundles" in
      let path = H.write_bundle ~dir min_r in
      Fun.protect
        ~finally:(fun () ->
          (try Sys.remove path with Sys_error _ -> ());
          try Unix.rmdir dir with Unix.Unix_error _ -> ())
        (fun () ->
          let again = H.replay path in
          Alcotest.(check string) "bundle replays the exact schedule"
            min_r.H.r_trace_hash again.H.r_trace_hash;
          Alcotest.(check bool) "replay still violates" true
            (H.violating again))

(* Client backoff is drawn from the simulator's seeded generator: the
   retry cadence against a dead socket is a pure function of the seed,
   and the total deadline bounds it. *)
let test_client_backoff_deterministic () =
  let attempt seed =
    let sched = Sim.create ~seed () in
    let io = Simio.create sched in
    let env = Simio.env io in
    let got = ref None in
    let out =
      Sim.run sched (fun () ->
          match
            Service.Client.connect ~env ~deadline_s:1.0 ~sock:"/nope" ()
          with
          | _ -> Alcotest.fail "connect to nowhere succeeded"
          | exception Service.Client.Connect_failed { attempts; elapsed_s; last; _ }
            ->
              got := Some (attempts, elapsed_s, last))
    in
    Alcotest.(check bool) "clean schedule" true out.Sim.ok;
    match !got with
    | Some r -> r
    | None -> Alcotest.fail "no Connect_failed"
  in
  let a1, e1, last = attempt 3 in
  let a2, e2, _ = attempt 3 in
  Alcotest.(check int) "attempt count deterministic" a1 a2;
  Alcotest.(check (float 0.)) "elapsed deterministic" e1 e2;
  Alcotest.(check bool) "actually retried" true (a1 > 1);
  Alcotest.(check bool) "gave up within the deadline (+1 backoff)" true
    (e1 <= 2.0);
  Alcotest.(check bool) "structured error names the cause" true
    (last = Service.Env.Not_found)

(* Satellite check for the broker's monotonic deadlines: a wall-clock
   jump of an hour mid-run must not expire anything — every request
   still completes. *)
let test_deadlines_survive_clock_jump () =
  let spec =
    H.builder ~seed:11 ()
    |> H.with_chaos 0
    |> H.with_fault (fault F.Clock_jump 1)
    |> H.with_deadline_ms (Some 5000)
  in
  let r = H.run spec in
  Alcotest.(check (list string))
    "no violations" []
    (List.map (fun v -> v.H.vio_kind) r.H.r_violations);
  Alcotest.(check bool) "every request compiled (none timed out)" true
    (List.for_all (fun (k, _) -> k = "done" || k = "done-cache") r.H.r_counts)

(* The stale-socket probe (satellite): a leftover socket file with no
   listener behind it is reclaimed; a *live* server's socket is not. *)
let test_server_socket_probe () =
  let sched = Sim.create ~seed:0 () in
  let io = Simio.create sched in
  let env = Simio.env io in
  let sock = "/run/x.sock" in
  let out =
    Sim.run sched (fun () ->
        (* Debris from a dead server: the file exists, nobody listens. *)
        env.Service.Env.write_file sock "";
        let broker = Service.Broker.create ~env ~workers:1 ~store:None () in
        let server =
          env.Service.Env.spawn "server" (fun () ->
              Service.Server.serve ~env ~sock ~broker ())
        in
        let c =
          Service.Client.connect ~env ~deadline_s:5. ~io_deadline_s:10. ~sock ()
        in
        Alcotest.(check bool) "ping through the reclaimed socket" true
          (Service.Client.ping c);
        (* A second server must refuse to steal the now-live socket. *)
        let b2 = Service.Broker.create ~env ~workers:1 ~store:None () in
        (match Service.Server.serve ~env ~sock ~broker:b2 () with
        | () -> Alcotest.fail "second server stole a live socket"
        | exception Invalid_argument _ -> ());
        Service.Broker.shutdown b2;
        (match Service.Client.shutdown_server c with
        | Ok () -> ()
        | Error e -> Alcotest.fail ("shutdown: " ^ e));
        Service.Client.close c;
        server.Service.Env.join ())
  in
  Alcotest.(check (list (pair string string)))
    "no fiber crashed" [] out.Sim.crashed;
  Alcotest.(check (list string)) "no fiber hung" [] out.Sim.hung

(* ---- multi-node fleets ------------------------------------------------ *)

let check_clean label (r : H.result) =
  Alcotest.(check (list string))
    label []
    (List.map (fun v -> v.H.vio_kind ^ ": " ^ v.H.vio_detail) r.H.r_violations)

let count label (r : H.result) =
  match List.assoc_opt label r.H.r_counts with Some n -> n | None -> 0

(* A worker hard-killed mid-load looks crashed (no leave): the
   coordinator's sweep must evict it, clients must fail over along the
   ring, and after the rejoin the fleet serves again — with zero wrong
   artifacts anywhere.  The whole story must replay from its seed. *)
let test_fleet_kill_and_rejoin () =
  let spec =
    H.builder ~seed:5 ()
    |> H.with_chaos 0
    |> H.with_nodes 3
    |> H.with_node_fault (H.Kill { node = 1; at = 0.3 })
    |> H.with_node_fault (H.Rejoin { node = 1; at = 1.4 })
  in
  let a = H.run spec in
  check_clean "kill/rejoin run clean" a;
  Alcotest.(check bool) "some requests completed" true
    (count "done" a + count "done-cache" a > 0);
  Alcotest.(check int) "every request accounted for"
    (a.H.r_spec.H.clients * a.H.r_spec.H.requests_per_client)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 a.H.r_counts);
  let b = H.run spec in
  Alcotest.(check string) "fleet runs replay" a.H.r_trace_hash b.H.r_trace_hash

(* A partitioned node is unreachable both ways until it heals; the
   coordinator sweeps it out, the healed node notices ("unknown" beat)
   and rejoins.  No wrong artifacts, no hangs. *)
let test_fleet_partition_heals () =
  let spec =
    H.builder ~seed:9 ()
    |> H.with_chaos 0
    |> H.with_nodes 3
    |> H.with_node_fault (H.Partition { node = 2; at = 0.3; until_ = 1.1 })
  in
  check_clean "partition run clean" (H.run spec)

(* Node chaos on top of message/disk chaos: the fleet-wide invariant —
   byte-identical IR or a clean contained failure, on every node's
   disk — holds across seeds. *)
let test_fleet_chaos_sweep () =
  let spec =
    H.builder ~seed:300 ()
    |> H.with_nodes 3 |> H.with_chaos 2 |> H.with_node_chaos 2
  in
  List.iter
    (fun (r : H.result) ->
      check_clean (Printf.sprintf "seed %d clean" r.H.r_spec.H.seed) r)
    (H.run_seeds ~seeds:2 spec)

(* Fleet bundles round-trip: the extended fields parse back to the same
   spec and replay to the identical schedule; classic bundles (no fleet
   fields) still parse. *)
let test_fleet_bundle_roundtrip () =
  let spec =
    H.builder ~seed:5 ()
    |> H.with_chaos 0
    |> H.with_nodes 2
    |> H.with_node_fault (H.Kill { node = 0; at = 0.4 })
    |> H.with_node_fault (H.Rejoin { node = 0; at = 1.0 })
  in
  let r = H.run spec in
  let dir = Filename.temp_dir "dbds-test-sim" ".bundles" in
  let path = H.write_bundle ~dir r in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let again = H.replay path in
      Alcotest.(check string) "fleet bundle replays the exact schedule"
        r.H.r_trace_hash again.H.r_trace_hash)

let suite =
  [
    test "sim: same seed, same schedule" test_same_seed_same_trace;
    test "sim: chaos sweep holds the invariant" test_chaos_sweep_holds_invariant;
    test "sim: corruption is caught, shrunk and replayable"
      test_corrupt_shrinks_and_replays;
    test "sim: client backoff is seeded and bounded"
      test_client_backoff_deterministic;
    test "sim: deadlines are monotonic under clock jumps"
      test_deadlines_survive_clock_jump;
    test "sim: stale socket reclaimed, live socket refused"
      test_server_socket_probe;
    test "sim: fleet survives a worker kill and rejoin"
      test_fleet_kill_and_rejoin;
    test "sim: fleet survives a partition that heals"
      test_fleet_partition_heals;
    test "sim: fleet chaos sweep holds the invariant" test_fleet_chaos_sweep;
    test "sim: fleet bundles round-trip and replay" test_fleet_bundle_roundtrip;
  ]
