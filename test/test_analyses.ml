(** Tests for the incremental analysis cache ({!Ir.Analyses}): physical
    reuse on an unchanged graph, generation-bump invalidation on
    mutation, loop-factor keying, interaction with the speculation
    journal, and cache effectiveness inside the DBDS driver loop. *)

open Ir.Types
module G = Ir.Graph
module B = Ir.Builder
open Helpers

(* entry -> (bt | bf) -> merge (phi) -> ret *)
let diamond () =
  let b = B.create ~name:"diamond" ~n_params:1 () in
  let x = B.param b 0 in
  let zero = B.const b 0 in
  let c = B.cmp b Gt x zero in
  let bt = B.new_block b in
  let bf = B.new_block b in
  let merge = B.new_block b in
  B.branch b c ~if_true:bt ~if_false:bf;
  B.switch b bt;
  B.jump b merge;
  B.switch b bf;
  B.jump b merge;
  let phi = B.phi b merge [ x; zero ] in
  B.switch b merge;
  B.ret b phi;
  B.finish b

let test_physical_reuse () =
  let g = diamond () in
  let d1 = Ir.Analyses.dom g in
  let d2 = Ir.Analyses.dom g in
  Alcotest.(check bool) "same physical dom" true (d1 == d2);
  let l1 = Ir.Analyses.loops g in
  let l2 = Ir.Analyses.loops g in
  Alcotest.(check bool) "same physical loops" true (l1 == l2);
  let f1 = Ir.Analyses.frequency g in
  let f2 = Ir.Analyses.frequency g in
  Alcotest.(check bool) "same physical frequency" true (f1 == f2);
  let s = Ir.Analyses.stats g in
  Alcotest.(check bool) "hits recorded" true (s.Ir.Analyses.hits >= 3);
  Alcotest.(check int) "three real computes" 3 s.Ir.Analyses.misses

let test_mutation_invalidates () =
  let g = diamond () in
  let d1 = Ir.Analyses.dom g in
  let gen_before = G.generation g in
  (* Any mutation must bump the generation... *)
  let k = G.append g (G.entry g) (Const 42) in
  Alcotest.(check bool) "generation bumped" true (G.generation g > gen_before);
  (* ...and invalidate the cached dominator tree. *)
  let d2 = Ir.Analyses.dom g in
  Alcotest.(check bool) "recomputed after mutation" true (not (d1 == d2));
  (* Unchanged again: the new tree is now stable. *)
  Alcotest.(check bool) "stable after recompute" true (d2 == Ir.Analyses.dom g);
  ignore k

let test_loop_factor_keying () =
  let g = diamond () in
  let f10 = Ir.Analyses.frequency ~loop_factor:10.0 g in
  let f2 = Ir.Analyses.frequency ~loop_factor:2.0 g in
  Alcotest.(check bool) "distinct per factor" true (not (f10 == f2));
  Alcotest.(check bool) "factor 10 cached" true
    (f10 == Ir.Analyses.frequency ~loop_factor:10.0 g);
  Alcotest.(check bool) "factor 2 cached" true
    (f2 == Ir.Analyses.frequency ~loop_factor:2.0 g)

let test_rollback_revives_cache () =
  let g = diamond () in
  let d0 = Ir.Analyses.dom g in
  let gen0 = G.generation g in
  let live0 = G.live_instr_count g in
  let printed0 = Ir.Printer.graph_to_string g in
  G.checkpoint g;
  (* A real structural change: new block spliced onto the merge edge. *)
  let nb = G.add_block g in
  ignore (G.append g nb (Const 7));
  G.set_term g nb (Jump (G.entry g));
  Alcotest.(check bool) "dom recomputed during speculation" true
    (not (d0 == Ir.Analyses.dom g));
  G.rollback g;
  Alcotest.(check int) "generation restored" gen0 (G.generation g);
  Alcotest.(check int) "live count restored" live0 (G.live_instr_count g);
  Alcotest.(check string) "structure restored" printed0
    (Ir.Printer.graph_to_string g);
  check_verifies g;
  Alcotest.(check bool) "checkpoint-time analysis revived" true
    (d0 == Ir.Analyses.dom g)

let test_commit_keeps_mutations () =
  let g = diamond () in
  let live0 = G.live_instr_count g in
  G.checkpoint g;
  ignore (G.append g (G.entry g) (Const 5));
  G.commit g;
  Alcotest.(check int) "mutation kept" (live0 + 1) (G.live_instr_count g);
  check_verifies g

(* A single hot function: repeated simulation rounds over an unchanged
   graph must reuse the analyses instead of recomputing them (the
   acceptance criterion: fewer Dom.compute executions than rounds). *)
let loop_src =
  {|
    int main(int n) {
      int s = 0;
      int i = 0;
      while (i < n) @0.9 {
        int r;
        if (i % 2 == 0) @0.5 { r = i * 2; } else { r = 3; }
        s = s + r;
        i = i + 1;
      }
      return s;
    }
  |}

let test_simulation_round_reuses () =
  let prog = compile loop_src in
  let ctx = Opt.Phase.create ~program:prog () in
  let g = Option.get (Ir.Program.find_function prog "main") in
  (* First round computes, second round (graph unchanged) reuses. *)
  ignore (Dbds.Simulation.simulate ctx Dbds.Config.default g);
  let s1 = Ir.Analyses.stats g in
  ignore (Dbds.Simulation.simulate ctx Dbds.Config.default g);
  let s2 = Ir.Analyses.stats g in
  Alcotest.(check int) "no new computes on unchanged graph"
    s1.Ir.Analyses.misses s2.Ir.Analyses.misses;
  Alcotest.(check bool) "dom+loops+freq reused" true
    (s2.Ir.Analyses.hits >= s1.Ir.Analyses.hits + 3)

let test_driver_cache_hits () =
  let prog = compile loop_src in
  let config =
    { Dbds.Config.default with Dbds.Config.max_iterations = 4 }
  in
  let ctx, stats = Dbds.Driver.optimize_program ~config ~jobs:1 prog in
  let rounds =
    (Dbds.Driver.total_stats stats).Dbds.Driver.iterations_run
  in
  Alcotest.(check bool) "ran at least one round" true (rounds >= 1);
  Alcotest.(check bool) "cache hits observed" true (ctx.Opt.Phase.analysis_hits > 0)

let suite =
  [
    test "physical reuse on unchanged graph" test_physical_reuse;
    test "mutation bumps generation and invalidates" test_mutation_invalidates;
    test "frequency keyed by loop factor" test_loop_factor_keying;
    test "rollback revives checkpoint-time cache" test_rollback_revives_cache;
    test "commit keeps mutations" test_commit_keeps_mutations;
    test "simulation rounds reuse analyses" test_simulation_round_reuses;
    test "driver records cache hits" test_driver_cache_hits;
  ]
