(** Workload-lab tests: the adversarial suites compile/verify/run
    deterministically, the irreducible rings really are irreducible, and
    the three new tier passes (copyprop, lospre, condelim_dup) do what
    their contracts claim on targeted shapes. *)

open Ir.Types
module G = Ir.Graph
open Helpers

let all_adversarial () =
  List.concat_map
    (fun s ->
      List.map
        (fun b -> (s.Workloads.Suite.suite_name, b))
        s.Workloads.Suite.benchmarks)
    Workloads.Registry.adversarial

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)
(* ------------------------------------------------------------------ *)

let test_suites_compile_and_verify () =
  Alcotest.(check int)
    "four adversarial suites" 4
    (List.length Workloads.Registry.adversarial);
  List.iter
    (fun (suite, b) ->
      match Workloads.Suite.compile b with
      | prog -> check_program_verifies prog
      | exception e ->
          Alcotest.failf "%s/%s does not build: %s" suite
            b.Workloads.Suite.name (Printexc.to_string e))
    (all_adversarial ())

let test_suites_run_deterministically () =
  List.iter
    (fun (suite, b) ->
      let run () =
        let prog = Workloads.Suite.compile b in
        let r, _ =
          Interp.Machine.run ~fuel:50_000_000 prog ~args:b.Workloads.Suite.args
        in
        Interp.Machine.result_to_string r
      in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s deterministic" suite b.Workloads.Suite.name)
        (run ()) (run ()))
    (all_adversarial ())

let test_registry_finds_lab_suites () =
  List.iter
    (fun name ->
      match Workloads.Registry.find_suite name with
      | Some _ -> ()
      | None -> Alcotest.failf "find_suite misses %s" name)
    [ "adv-irreducible"; "adv-dispatch"; "adv-diamonds"; "adv-abnormal" ];
  (* ...without disturbing the paper registry. *)
  Alcotest.(check int) "paper suites unchanged" 4
    (List.length Workloads.Registry.all)

(* The ring really is irreducible: it has a cycle, yet natural-loop
   detection (back edge = edge to a dominator) finds nothing. *)
let test_ring_is_irreducible () =
  List.iter
    (fun nodes ->
      let g =
        Ir.Parse.parse_graph (Workloads.Advgen.irr_ring_text ~nodes ~seed:23)
      in
      check_verifies g;
      let dom = Ir.Dom.compute g in
      let loops = Ir.Loops.loops (Ir.Loops.compute dom) in
      Alcotest.(check int)
        (Printf.sprintf "%d-node ring: no natural loops" nodes)
        0 (List.length loops);
      (* ...but a cycle exists: some edge targets a non-dominating block
         already seen on the path — cheap check: some block has an
         in-edge from a block with a higher RPO index. *)
      let rpo = G.rpo g in
      let index = Hashtbl.create 16 in
      List.iteri (fun i b -> Hashtbl.replace index b i) rpo;
      let retreating = ref 0 in
      List.iter
        (fun b ->
          List.iter
            (fun s ->
              if Hashtbl.find index s <= Hashtbl.find index b then
                incr retreating)
            (G.succs g b))
        rpo;
      if !retreating = 0 then
        Alcotest.failf "%d-node ring has no retreating edge (no cycle?)" nodes)
    [ 2; 3; 5; 8 ]

(* Every tier computes the same result on every adversarial benchmark —
   the lab's differential-correctness invariant. *)
let test_tiers_agree () =
  let spec_of s =
    match Opt.Spec.of_string s with
    | Ok spec -> spec
    | Error msg -> Alcotest.failf "%S: %s" s msg
  in
  let upgraded pass =
    {
      Dbds.Config.off with
      Dbds.Config.passes =
        Some
          (spec_of
             ("inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce,"
            ^ pass ^ ")"));
    }
  in
  let tiers =
    [
      ("off", Dbds.Config.off);
      ("copyprop", upgraded "copyprop");
      ("lospre", upgraded "lospre");
      ("condelim_dup", Dbds.Config.condelim_dup);
      ("dbds", Dbds.Config.dbds);
      ("dupalot", Dbds.Config.dupalot);
      ("backtracking", Dbds.Config.backtracking);
    ]
  in
  List.iter
    (fun (suite, b) ->
      let result (tier, config) =
        let prog = Workloads.Suite.compile b in
        let _ = Dbds.Driver.optimize_program ~config prog in
        check_program_verifies prog;
        let r, _ =
          Interp.Machine.run ~fuel:50_000_000 prog ~args:b.Workloads.Suite.args
        in
        (tier, Interp.Machine.result_to_string r)
      in
      match List.map result tiers with
      | [] -> assert false
      | (_, expect) :: rest ->
          List.iter
            (fun (tier, got) ->
              Alcotest.(check string)
                (Printf.sprintf "%s/%s: %s agrees with off" suite
                   b.Workloads.Suite.name tier)
                expect got)
            rest)
    (all_adversarial ())

(* ------------------------------------------------------------------ *)
(* copyprop                                                            *)
(* ------------------------------------------------------------------ *)

(* A loop-carried phi cycle that only ever sees one constant: optimistic
   copy propagation collapses it (pessimistic per-instruction
   canonicalization cannot: phi(7, phi(...)) is cyclic). *)
let test_copyprop_phi_cycle () =
  let g =
    Ir.Parse.parse_graph
      "fn f(1 params) entry=b0\n\
       b0:\n\
       v0 = param 0\n\
       v1 = const 7\n\
       v2 = const 0\n\
       jump b1\n\
       b1:  ; preds: b0, b1\n\
       v3 = phi [v1, v3]\n\
       v4 = phi [v2, v5]\n\
       v5 = add v4, v3\n\
       v6 = cmp.lt v5, v0\n\
       branch v6 ? b1 : b2  @0.90\n\
       b2:\n\
       return v5\n"
  in
  check_verifies g;
  let prog = Ir.Program.of_graph g in
  let ctx = Opt.Phase.create ~program:prog () in
  Alcotest.(check bool) "copyprop fires" true (Opt.Copyprop.run ctx g);
  ignore (Opt.Dce.run ctx g);
  check_verifies g;
  (* The add now reads the constant directly, not through the phi. *)
  let adds_through_phi =
    G.fold_instrs g
      (fun n id ->
        match G.kind g id with
        | Binop (Add, _, b) when G.is_phi g b -> n + 1
        | _ -> n)
      0
  in
  Alcotest.(check int) "add's rhs is no longer a phi" 0 adds_through_phi;
  Alcotest.(check int) "semantics kept" 28 (run_int prog [ 25 ])

(* ------------------------------------------------------------------ *)
(* lospre                                                              *)
(* ------------------------------------------------------------------ *)

(* The expression is computed in one predecessor and again after the
   merge: partial redundancy.  lospre hoists a copy into the other
   predecessor and phis the two, leaving the merge block free of it. *)
let test_lospre_hoists_partial_redundancy () =
  let g =
    Ir.Parse.parse_graph
      "fn f(2 params) entry=b0\n\
       b0:\n\
       v0 = param 0\n\
       v1 = param 1\n\
       v2 = cmp.gt v0, v1\n\
       branch v2 ? b1 : b2  @0.50\n\
       b1:\n\
       v3 = add v0, v1\n\
       jump b3\n\
       b2:\n\
       jump b3\n\
       b3:  ; preds: b1, b2\n\
       v4 = phi [v3, v1]\n\
       v5 = add v0, v1\n\
       v6 = add v4, v5\n\
       return v6\n"
  in
  check_verifies g;
  let prog = Ir.Program.of_graph g in
  let merge_block () =
    (* the only block with two predecessors *)
    let r = ref (-1) in
    G.iter_blocks g (fun b -> if G.pred_count g b = 2 then r := b);
    !r
  in
  let adds_in b =
    let n = ref 0 in
    G.iter_block_instrs g b (fun id ->
        match G.kind g id with Binop (Add, _, _) -> incr n | _ -> ());
    !n
  in
  let phis_in b =
    let n = ref 0 in
    G.iter_phis g b (fun _ -> incr n);
    !n
  in
  let before = run_int prog [ 9; 4 ] in
  Alcotest.(check int) "merge computes two adds before" 2
    (adds_in (merge_block ()));
  let ctx = Opt.Phase.create ~program:prog () in
  Alcotest.(check bool) "lospre fires" true (Opt.Lospre.run ctx g);
  check_verifies g;
  (* The redundant add left the merge (only the consumer add remains)
     and arrives through a fresh phi instead. *)
  Alcotest.(check int) "merge computes one add after" 1
    (adds_in (merge_block ()));
  Alcotest.(check int) "merge gained a phi" 2 (phis_in (merge_block ()));
  Alcotest.(check int) "semantics kept" before (run_int prog [ 9; 4 ])

(* ------------------------------------------------------------------ *)
(* condelim_dup tier                                                   *)
(* ------------------------------------------------------------------ *)

(* The canonical decode/dispatch shape: the tier must find the merge
   between the chains, duplicate it, and the repeated test folds. *)
let test_condelim_dup_duplicates () =
  let src =
    {|
    int main(int n) {
      int i = 0;
      int acc = 0;
      while (i < n) @0.999 {
        int t = 0;
        if ((i & 1) == 0) @0.50 { t = 1; } else { t = 2; }
        if (t == 1) @0.50 { acc = acc + 3; } else { acc = acc + 5; }
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let expect = run_int (compile src) [ 100 ] in
  let prog = compile src in
  let _ctx, stats =
    Dbds.Driver.optimize_program ~config:Dbds.Config.condelim_dup prog
  in
  check_program_verifies prog;
  let totals = Dbds.Driver.total_stats stats in
  if totals.Dbds.Driver.duplications_performed = 0 then
    Alcotest.fail "condelim_dup tier performed no duplication";
  Alcotest.(check int) "semantics kept" expect (run_int prog [ 100 ])

let suite =
  [
    test "lab: suites compile and verify" test_suites_compile_and_verify;
    test "lab: suites run deterministically" test_suites_run_deterministically;
    test "lab: registry finds lab suites" test_registry_finds_lab_suites;
    test "lab: rings are irreducible" test_ring_is_irreducible;
    test "lab: all tiers agree on all benchmarks" test_tiers_agree;
    test "copyprop: collapses constant phi cycle" test_copyprop_phi_cycle;
    test "lospre: hoists partial redundancy" test_lospre_hoists_partial_redundancy;
    test "condelim_dup: duplicates the dispatch merge" test_condelim_dup_duplicates;
  ]
