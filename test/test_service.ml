(** The compilation service: digest stability, the content-addressed
    artifact store (atomicity, checksum degradation, LRU GC, fault
    containment, the parsed-artifact memo), the driver cache hook, VM
    warm-start hooks, broker coalescing / backpressure / deadlines, and
    the wire protocol. *)

open Helpers
module F = Dbds.Faults
module SD = Service.Digest
module SS = Service.Store
module SB = Service.Broker
module SP = Service.Protocol

let figure1 =
  {|
  int main(int x) {
    int phi;
    if (x > 0) { phi = x; } else { phi = 0; }
    return 2 + phi;
  }
|}

let trio =
  {|
  int f(int x) { int a; if (x > 0) { a = x; } else { a = 1; } return a * 2; }
  int g(int x) { int b; if (x > 3) { b = x + 1; } else { b = 2; } return b + b; }
  int main(int x) { return f(x) + g(x); }
|}

let main_of prog = Option.get (Ir.Program.find_function prog "main")
let config = Dbds.Config.default

(* A scratch store directory, removed when [f] finishes. *)
let with_store ?capacity f =
  let dir = Filename.temp_dir "dbds-test-service" ".store" in
  let rm_rf () =
    (match Sys.readdir dir with
    | names ->
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          names
    | exception Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:rm_rf (fun () ->
      f (SS.create ?capacity ~dir ()))

let plan ?fn site hit = { F.seed = 0; site; hit; fn }
let armed plan f = F.armed (Some plan) ~fn:"main" f

(* A small canonical artifact payload to publish. *)
let canonical_main src = SD.canonical_of_graph (main_of (compile src))

(* ------------------------------------------------------------------ *)
(* Digest                                                              *)
(* ------------------------------------------------------------------ *)

(* The streaming hash must agree with the print -> parse round-trip:
   both normalize ids the same way. *)
let test_digest_roundtrip () =
  List.iter
    (fun src ->
      let prog = compile src in
      Ir.Program.iter_functions prog (fun g ->
          let direct = SD.ir_hash_of_graph g in
          let through_text = SD.ir_hash_of_text (Ir.Printer.graph_to_string g) in
          Alcotest.(check string)
            (Ir.Graph.name g ^ ": hash survives print/parse")
            direct through_text))
    [ figure1; trio ]

(* Renumber every value and block id injectively in the printed text;
   the hash must not move (ids are representation, not content). *)
let renumber text =
  let buf = Buffer.create (String.length text * 2) in
  let n = String.length text in
  let is_digit c = c >= '0' && c <= '9' in
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_'
  in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if
      (c = 'v' || c = 'b')
      && (!i = 0 || not (is_word text.[!i - 1]))
      && !i + 1 < n
      && is_digit text.[!i + 1]
    then begin
      let j = ref (!i + 1) in
      while !j < n && is_digit text.[!j] do incr j done;
      let id = int_of_string (String.sub text (!i + 1) (!j - !i - 1)) in
      let id' = if c = 'v' then (2 * id) + 5 else (3 * id) + 1 in
      Buffer.add_char buf c;
      Buffer.add_string buf (string_of_int id');
      i := !j
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let test_digest_renumbering_invariant () =
  let text = Ir.Printer.graph_to_string (main_of (compile trio)) in
  let renumbered = renumber text in
  Alcotest.(check bool) "renumbering changed the text" true (text <> renumbered);
  Alcotest.(check string) "hash invariant under id renumbering"
    (SD.ir_hash_of_text text)
    (SD.ir_hash_of_text renumbered)

let test_digest_sensitivity () =
  let g = main_of (compile figure1) in
  let rq = SD.request_of_graph ~config g in
  let base = SD.of_request rq in
  let differs what rq' =
    Alcotest.(check bool) (what ^ " changes the digest") true
      (SD.of_request rq' <> base)
  in
  differs "config"
    (SD.request_of_graph
       ~config:{ config with Dbds.Config.mode = Dbds.Config.Dupalot }
       g);
  differs "context" (SD.request_of_graph ~context:"other" ~config g);
  differs "spec" { rq with SD.rq_spec = rq.SD.rq_spec ^ ";extra" };
  differs "cost revision"
    { rq with SD.rq_cost_revision = rq.SD.rq_cost_revision + 1 };
  differs "ir" { rq with SD.rq_ir_hash = SD.fnv64 "something else" };
  (* And the body actually feeds the hash. *)
  let other = main_of (compile trio) in
  Alcotest.(check bool) "different bodies hash differently" true
    (SD.ir_hash_of_graph g <> SD.ir_hash_of_graph other)

(* Keys without a pipeline effect must not shape the digest: a request
   carrying an [inject] fault plan (the protocol re-attaches it outside
   the config line) and one without must collide in the cache — the
   fault plan changes what the worker *does*, never what a correct
   artifact *is*.  Guards [Config.to_line]'s exclusion list. *)
let test_digest_ignores_fault_plan () =
  let g = main_of (compile figure1) in
  let base = SD.of_request (SD.request_of_graph ~config g) in
  let armed =
    {
      config with
      Dbds.Config.fault_plan = Some (plan ~fn:"main" F.Store_corrupt 1);
      bundle_dir = Some "/tmp/bundles";
      containment = false;
    }
  in
  Alcotest.(check string) "fault plan, bundle dir, containment: same digest"
    base
    (SD.of_request (SD.request_of_graph ~config:armed g));
  (* The knob default must also be invisible: a config with the
     historical pea fixpoint renders — and therefore digests — exactly
     as before the knob existed. *)
  Alcotest.(check string) "pea_max_rounds=0 renders as the historical line"
    (Dbds.Config.to_line config)
    (Dbds.Config.to_line { config with Dbds.Config.pea_max_rounds = 0 });
  let capped = { config with Dbds.Config.pea_max_rounds = 2 } in
  Alcotest.(check bool) "a non-default pea cap changes the digest" true
    (SD.of_request (SD.request_of_graph ~config:capped g) <> base);
  Alcotest.(check int) "and round-trips through the wire line" 2
    (Dbds.Config.of_line (Dbds.Config.to_line capped)).Dbds.Config.pea_max_rounds

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  with_store (fun st ->
      let ir = canonical_main figure1 in
      SS.put st ~digest:"d1" ~fn:"main" ~ir ~work:42;
      (match SS.get st ~digest:"d1" with
      | Some e ->
          Alcotest.(check string) "fn" "main" e.SS.ar_fn;
          Alcotest.(check string) "ir" ir e.SS.ar_ir;
          Alcotest.(check int) "work" 42 e.SS.ar_work
      | None -> Alcotest.fail "published artifact not found");
      Alcotest.(check bool) "miss on unknown digest" true
        (SS.get st ~digest:"nope" = None);
      let s = SS.stats st in
      Alcotest.(check int) "one write" 1 s.SS.writes;
      Alcotest.(check int) "one hit" 1 s.SS.hits;
      Alcotest.(check int) "one miss" 1 s.SS.misses)

let test_store_corruption_degrades () =
  with_store (fun st ->
      SS.put st ~digest:"d1" ~fn:"main" ~ir:(canonical_main figure1) ~work:1;
      (* Rot the artifact on disk behind the store's back. *)
      let path = Filename.concat (SS.dir st) "d1.art" in
      let oc = open_out_bin path in
      output_string oc "garbage, not an artifact";
      close_out oc;
      Alcotest.(check bool) "corrupt entry reads as a miss" true
        (SS.get st ~digest:"d1" = None);
      Alcotest.(check int) "corruption counted" 1 (SS.stats st).SS.corrupt;
      Alcotest.(check bool) "corrupt file evicted" false (Sys.file_exists path))

let test_store_lru_eviction () =
  let ir = canonical_main figure1 in
  (* Room for roughly two artifacts. *)
  with_store ~capacity:((String.length ir + 128) * 2) (fun st ->
      List.iter
        (fun d -> SS.put st ~digest:d ~fn:"main" ~ir ~work:1)
        [ "d1"; "d2"; "d3"; "d4" ];
      let s = SS.stats st in
      Alcotest.(check bool) "evictions happened" true (s.SS.evictions > 0);
      Alcotest.(check bool) "budget holds" true
        (SS.used st <= (String.length ir + 128) * 2);
      Alcotest.(check bool) "most recent entry survives" true
        (SS.get st ~digest:"d4" <> None);
      Alcotest.(check bool) "oldest entry evicted" true
        (SS.get st ~digest:"d1" = None))

(* Every store fault site fires, is contained as a degraded operation,
   and the store recovers on the next attempt. *)
let test_store_fault_sites () =
  let ir = canonical_main figure1 in
  (* Torn temp write: the publication never happens. *)
  with_store (fun st ->
      armed (plan F.Store_write 1) (fun () ->
          SS.put st ~digest:"d1" ~fn:"main" ~ir ~work:1);
      Alcotest.(check int) "write failure counted" 1
        (SS.stats st).SS.write_failures;
      Alcotest.(check bool) "no file published" false
        (Sys.file_exists (Filename.concat (SS.dir st) "d1.art"));
      SS.put st ~digest:"d1" ~fn:"main" ~ir ~work:1;
      Alcotest.(check bool) "store recovers after torn write" true
        (SS.get st ~digest:"d1" <> None));
  (* Torn publish: a truncated file appears under the final name; the
     next read sees the checksum mismatch and degrades to a miss. *)
  with_store (fun st ->
      armed (plan F.Store_rename 1) (fun () ->
          SS.put st ~digest:"d1" ~fn:"main" ~ir ~work:1);
      Alcotest.(check bool) "torn file exists" true
        (Sys.file_exists (Filename.concat (SS.dir st) "d1.art"));
      Alcotest.(check bool) "torn entry reads as a miss" true
        (SS.get st ~digest:"d1" = None);
      Alcotest.(check int) "corruption counted" 1 (SS.stats st).SS.corrupt;
      SS.put st ~digest:"d1" ~fn:"main" ~ir ~work:1;
      Alcotest.(check bool) "store recovers after torn publish" true
        (SS.get st ~digest:"d1" <> None));
  (* Injected read failure: contained, counted, and transient. *)
  with_store (fun st ->
      SS.put st ~digest:"d1" ~fn:"main" ~ir ~work:1;
      armed (plan F.Store_read 1) (fun () ->
          Alcotest.(check bool) "injected read degrades to a miss" true
            (SS.get st ~digest:"d1" = None));
      Alcotest.(check int) "read failure counted" 1
        (SS.stats st).SS.read_failures;
      Alcotest.(check bool) "entry still readable afterwards" true
        (SS.get st ~digest:"d1" <> None))

let test_store_get_graph_memo () =
  with_store (fun st ->
      SS.put st ~digest:"d1" ~fn:"main" ~ir:(canonical_main figure1) ~work:3;
      let g1 =
        match SS.get_graph st ~digest:"d1" with
        | Some (e, g) ->
            Alcotest.(check int) "work carried" 3 e.SS.ar_work;
            g
        | None -> Alcotest.fail "first get_graph missed"
      in
      (match SS.get_graph st ~digest:"d1" with
      | Some (_, g2) ->
          Alcotest.(check bool) "repeat lookups share one parse" true (g1 == g2)
      | None -> Alcotest.fail "second get_graph missed");
      (* Dropping the entry drops the memo with it. *)
      SS.discard st ~digest:"d1";
      Alcotest.(check bool) "memo does not outlive the file" true
        (SS.get_graph st ~digest:"d1" = None);
      (* Checksummed-but-unparsable IR is semantic corruption: evicted. *)
      SS.put st ~digest:"d2" ~fn:"main" ~ir:"fn broken(" ~work:1;
      Alcotest.(check bool) "unparsable artifact degrades to a miss" true
        (SS.get_graph st ~digest:"d2" = None);
      Alcotest.(check bool) "unparsable artifact evicted" false
        (Sys.file_exists (Filename.concat (SS.dir st) "d2.art")))

(* ------------------------------------------------------------------ *)
(* Driver cache hook                                                   *)
(* ------------------------------------------------------------------ *)

let optimize_with cache prog =
  ignore
    (Dbds.Driver.optimize_program_report ~config ~inline:false ~jobs:1 ~cache
       prog);
  prog

let test_driver_cache_warm_identical () =
  with_store (fun st ->
      let fingerprint prog =
        let acc = ref [] in
        Ir.Program.iter_functions prog (fun g ->
            acc := (Ir.Graph.name g, SD.canonical_of_graph g) :: !acc);
        List.sort compare !acc
      in
      let context = SD.context_of_program (compile trio) in
      let cache = SS.driver_cache ~context st in
      let cold = fingerprint (optimize_with cache (compile trio)) in
      let s = SS.stats st in
      Alcotest.(check bool) "cold run publishes" true (s.SS.writes > 0);
      let hits_before = s.SS.hits in
      let warm = fingerprint (optimize_with cache (compile trio)) in
      Alcotest.(check bool) "warm run hits" true (s.SS.hits > hits_before);
      Alcotest.(check bool) "warm output byte-identical to cold" true
        (cold = warm);
      (* The same functions, uncached, agree too. *)
      let direct = fingerprint (optimize_with (SS.driver_cache st) (compile trio)) in
      List.iter2
        (fun (n, a) (_, b) ->
          Alcotest.(check string) (n ^ ": cached = direct") b a)
        warm direct)

(* ------------------------------------------------------------------ *)
(* VM warm-start hooks                                                 *)
(* ------------------------------------------------------------------ *)

let test_warm_hooks_roundtrip () =
  with_store (fun st ->
      let lookup, spill = Service.Warm.hooks ~config st in
      let pristine = main_of (compile figure1) in
      Alcotest.(check bool) "cold lookup misses" true
        (lookup ~fn:"main" ~pristine = None);
      (* Optimize a copy to play the role of the tier-1 body. *)
      let p = Ir.Program.of_graph (Ir.Graph.copy pristine) in
      ignore (Dbds.Driver.optimize_program_report ~config ~inline:false ~jobs:1 p);
      let optimized = main_of p in
      spill ~fn:"main" ~pristine ~optimized ~work:9;
      match lookup ~fn:"main" ~pristine with
      | None -> Alcotest.fail "spilled artifact not found"
      | Some (g, work) ->
          Alcotest.(check int) "work survives the round-trip" 9 work;
          Alcotest.(check string) "body survives the round-trip"
            (SD.canonical_of_graph optimized)
            (SD.canonical_of_graph g);
          check_verifies g)

(* ------------------------------------------------------------------ *)
(* Broker                                                              *)
(* ------------------------------------------------------------------ *)

let ir_of_fn src fn =
  Ir.Printer.graph_to_string
    (Option.get (Ir.Program.find_function (compile src) fn))

let test_broker_coalescing () =
  let ir = ir_of_fn figure1 "main" in
  let b = SB.create ~workers:2 ~delay_s:0.3 ~store:None () in
  Fun.protect
    ~finally:(fun () -> SB.shutdown b)
    (fun () ->
      let domains =
        List.init 4 (fun _ ->
            Domain.spawn (fun () -> SB.submit ~config ~fn:"main" ~ir b))
      in
      let outcomes = List.map Domain.join domains in
      let irs =
        List.map
          (function
            | SB.Done { ir; from_cache = false; _ } -> ir
            | o -> Alcotest.failf "unexpected outcome %s" (SB.outcome_label o))
          outcomes
      in
      (match irs with
      | first :: rest ->
          List.iter
            (Alcotest.(check string) "coalesced outcomes identical" first)
            rest
      | [] -> assert false);
      let s = SB.stats b in
      Alcotest.(check int) "exactly one pipeline execution" 1 s.SB.compiles;
      Alcotest.(check int) "three requests coalesced" 3 s.SB.coalesced;
      Alcotest.(check int) "four requests" 4 s.SB.requests)

let test_broker_backpressure () =
  let b = SB.create ~workers:1 ~queue_limit:1 ~delay_s:0.6 ~store:None () in
  Fun.protect
    ~finally:(fun () -> SB.shutdown b)
    (fun () ->
      (* Distinct digests so nothing coalesces: the first occupies the
         single worker, the second the single queue slot. *)
      let submit fn src =
        Domain.spawn (fun () -> SB.submit ~config ~fn ~ir:(ir_of_fn src fn) b)
      in
      let d1 = submit "f" trio in
      Unix.sleepf 0.15;
      let d2 = submit "g" trio in
      Unix.sleepf 0.15;
      let third =
        SB.submit ~config ~fn:"main" ~ir:(ir_of_fn figure1 "main") ~delay_s:0. b
      in
      Alcotest.(check string) "third request shed" "shed"
        (SB.outcome_label third);
      Alcotest.(check int) "shed counted" 1 (SB.stats b).SB.shed;
      List.iter
        (fun d ->
          match Domain.join d with
          | SB.Done _ -> ()
          | o -> Alcotest.failf "queued request %s" (SB.outcome_label o))
        [ d1; d2 ])

let test_broker_deadline () =
  let b = SB.create ~workers:1 ~store:None () in
  Fun.protect
    ~finally:(fun () -> SB.shutdown b)
    (fun () ->
      let o =
        SB.submit ~deadline_s:(-0.1) ~config ~fn:"main"
          ~ir:(ir_of_fn figure1 "main") b
      in
      Alcotest.(check string) "expired deadline times out at admission"
        "timed-out" (SB.outcome_label o);
      Alcotest.(check int) "timeout counted" 1 (SB.stats b).SB.timeouts)

let test_broker_bad_request () =
  let b = SB.create ~workers:1 ~store:None () in
  Fun.protect
    ~finally:(fun () -> SB.shutdown b)
    (fun () ->
      match SB.submit ~config ~fn:"main" ~ir:"fn broken(" b with
      | SB.Rejected _ -> ()
      | o -> Alcotest.failf "expected rejection, got %s" (SB.outcome_label o))

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let via_wire msgs =
  let path = Filename.temp_file "dbds-test-proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      List.iter (SP.write oc) msgs;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> List.map (fun _ -> SP.read ic) msgs))

let test_protocol_roundtrip () =
  let m1 =
    {
      SP.verb = "compile";
      fields =
        [
          ("fn", "main");
          ("ir", "fn main(1 params) entry=b0\nb0:\n  return v0\n");
          ("config", Dbds.Config.to_line config);
        ];
    }
  in
  let m2 = { SP.verb = "ping"; fields = [] } in
  (match via_wire [ m1; m2 ] with
  | [ Ok r1; Ok r2 ] ->
      Alcotest.(check bool) "multi-line payload survives" true (r1 = m1);
      Alcotest.(check bool) "empty message survives" true (r2 = m2);
      Alcotest.(check (option string)) "field access" (Some "main")
        (SP.field r1 "fn");
      Alcotest.(check string) "field default" "none"
        (SP.field_or r1 "missing" "none")
  | rs ->
      Alcotest.failf "round-trip failed: %s"
        (String.concat "; "
           (List.map (function Ok _ -> "ok" | Error e -> e) rs)));
  (* Garbage input is an [Error], never an exception. *)
  let path = Filename.temp_file "dbds-test-proto" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "nonsense without a header\n";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match SP.read ic with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "garbage parsed as a message"))

let test_protocol_outcomes () =
  List.iter
    (fun o ->
      match SP.outcome_of_reply (SP.reply_of_outcome o) with
      | Ok o' ->
          Alcotest.(check bool)
            (SB.outcome_label o ^ " survives the wire")
            true (o = o')
      | Error e -> Alcotest.failf "%s: %s" (SB.outcome_label o) e)
    [
      SB.Done { ir = "fn f(0 params) entry=b0\nb0:\n  return\n"; work = 7; from_cache = false };
      SB.Done { ir = "multi\nline"; work = 0; from_cache = true };
      SB.Failed "transform.apply: Injected";
      SB.Timed_out;
      SB.Shed;
      SB.Rejected "parse: bad input";
    ]

(* ------------------------------------------------------------------ *)
(* Crash-mid-publication on the simulated disk                         *)
(* ------------------------------------------------------------------ *)

module Sim = Simtest.Sched
module Simio = Simtest.Simio

(* Run [f] against a simulated-disk environment with [faults] armed.
   The schedule itself must stay clean: a crashed or hung fiber here
   means the test body leaked an exception it claimed to contain. *)
let on_sim_disk ~faults f =
  let sched = Sim.create ~seed:0 () in
  let io = Simio.create ~faults sched in
  let out = Sim.run sched (fun () -> f (Simio.env io)) in
  Alcotest.(check (list (pair string string)))
    "no fiber crashed" [] out.Sim.crashed;
  Alcotest.(check (list string)) "no fiber hung" [] out.Sim.hung

let sim_plan site hit = { F.seed = 0; site; hit; fn = None }

(* A power cut at the publication point: the rename never happens and
   control never returns.  The final name must not appear — not now,
   not after a restart — and the temp file is the only debris. *)
let test_store_sim_crash_mid_publication () =
  on_sim_disk ~faults:[ sim_plan F.Disk_crash 1 ] (fun env ->
      let ir = canonical_main figure1 in
      let digest = SD.fnv64 ir in
      let st = SS.create ~env ~dir:"/store" () in
      (match SS.put st ~digest ~fn:"main" ~ir ~work:7 with
      | () -> Alcotest.fail "publication should have crashed"
      | exception Simio.Crashed _ -> ());
      Alcotest.(check bool) "no visible artifact" true
        (SS.get st ~digest = None);
      let names = Array.to_list (env.Service.Env.readdir "/store") in
      Alcotest.(check bool) "temp debris remains" true
        (List.exists
           (fun n -> String.length n > 4 && String.sub n 0 4 = ".tmp")
           names);
      (* Restart: a fresh store over the surviving disk must scan the
         debris away from sight and accept a clean republication. *)
      let st2 = SS.create ~env ~dir:"/store" () in
      Alcotest.(check bool) "restart: still a miss" true
        (SS.get st2 ~digest = None);
      SS.put st2 ~digest ~fn:"main" ~ir ~work:7;
      match SS.get st2 ~digest with
      | Some e -> Alcotest.(check string) "republished ir" ir e.SS.ar_ir
      | None -> Alcotest.fail "republication after restart failed")

(* A torn disk write under the temp name: the store contains it as an
   ordinary write failure (Sys_error), nothing becomes visible, and
   the next attempt succeeds — the fault is one-shot. *)
let test_store_sim_torn_write_contained () =
  on_sim_disk ~faults:[ sim_plan F.Disk_torn 1 ] (fun env ->
      let ir = canonical_main figure1 in
      let digest = SD.fnv64 ir in
      let st = SS.create ~env ~dir:"/store" () in
      SS.put st ~digest ~fn:"main" ~ir ~work:7;
      Alcotest.(check int) "write failure counted" 1
        (SS.stats st).SS.write_failures;
      Alcotest.(check bool) "nothing published" true (SS.get st ~digest = None);
      SS.put st ~digest ~fn:"main" ~ir ~work:7;
      Alcotest.(check bool) "retry publishes" true (SS.get st ~digest <> None))

(* Slow IO delays the publication but changes nothing else; the sim
   clock records exactly how slow it was. *)
let test_store_sim_slow_io () =
  on_sim_disk ~faults:[ sim_plan F.Disk_slow 1 ] (fun env ->
      let ir = canonical_main figure1 in
      let digest = SD.fnv64 ir in
      let st = SS.create ~env ~dir:"/store" () in
      let before = env.Service.Env.mono () in
      SS.put st ~digest ~fn:"main" ~ir ~work:7;
      let elapsed = env.Service.Env.mono () -. before in
      Alcotest.(check bool) "the slow fault cost virtual seconds" true
        (elapsed >= 2.0);
      Alcotest.(check bool) "published regardless" true
        (SS.get st ~digest <> None))

let suite =
  [
    test "digest: hash survives print/parse round-trip" test_digest_roundtrip;
    test "digest: invariant under id renumbering"
      test_digest_renumbering_invariant;
    test "digest: sensitive to every request component" test_digest_sensitivity;
    test "digest: blind to fault plans and the pea-cap default"
      test_digest_ignores_fault_plan;
    test "store: publish and read back" test_store_roundtrip;
    test "store: corruption degrades to a miss" test_store_corruption_degrades;
    test "store: LRU eviction bounds the budget" test_store_lru_eviction;
    test "store: every fault site contained" test_store_fault_sites;
    test "store: parsed-artifact memo" test_store_get_graph_memo;
    test "store: sim-disk crash mid-publication"
      test_store_sim_crash_mid_publication;
    test "store: sim-disk torn write contained"
      test_store_sim_torn_write_contained;
    test "store: sim-disk slow IO delays, nothing else"
      test_store_sim_slow_io;
    test "driver cache: warm run byte-identical" test_driver_cache_warm_identical;
    test "warm hooks: spill and lookup round-trip" test_warm_hooks_roundtrip;
    test "broker: identical requests coalesce" test_broker_coalescing;
    test "broker: full queue sheds" test_broker_backpressure;
    test "broker: expired deadline" test_broker_deadline;
    test "broker: malformed request rejected" test_broker_bad_request;
    test "protocol: message round-trip" test_protocol_roundtrip;
    test "protocol: outcome round-trip" test_protocol_outcomes;
  ]
