(** SCCP tests: constants through cycles and conditionally-dead code —
    the cases per-instruction canonicalization cannot see. *)

open Ir.Types
module G = Ir.Graph
open Helpers

let run_sccp prog =
  let ctx = Opt.Phase.create ~program:prog () in
  Ir.Program.iter_functions prog (fun g ->
      ignore (Opt.Sccp.run ctx g);
      (* Cleanup passes so assertions see the residue. *)
      ignore (Opt.Canonicalize.run ctx g);
      ignore (Opt.Simplify_cfg.run ctx g);
      ignore (Opt.Dce.run ctx g));
  check_program_verifies prog;
  prog

let count_kind prog fn pred =
  let g = Option.get (Ir.Program.find_function prog fn) in
  G.fold_instrs g (fun n id -> if pred (G.kind g id) then n + 1 else n) 0

let test_constant_through_loop () =
  (* x stays 5 through the loop: SCCP proves the loop-carried phi
     constant; the canonicalizer alone cannot (phi(5, x+0) is cyclic). *)
  let src =
    {|
    int main(int n) {
      int x = 5;
      int i = 0;
      while (i < n) {
        x = x + 0;
        i = i + 1;
      }
      return x * 2;
    }
    |}
  in
  let prog = run_sccp (compile src) in
  Alcotest.(check int) "result" 10 (run_int prog [ 3 ]);
  (* The multiply folded: x was proven constant. *)
  Alcotest.(check int) "no multiply/shift left" 0
    (count_kind prog "main" (function
      | Binop ((Mul | Shl), _, _) -> true
      | _ -> false))

let test_conditionally_dead_code () =
  (* The condition is constant, so the else side never executes and its
     would-be-Bottom contribution to the phi is ignored. *)
  let src =
    {|
    int main(int n) {
      int flag = 1;
      int v;
      if (flag > 0) { v = 7; } else { v = n * 1000; }
      return v + 1;
    }
    |}
  in
  let prog = run_sccp (compile src) in
  Alcotest.(check int) "result" 8 (run_int prog [ 99 ]);
  let g = Option.get (Ir.Program.find_function prog "main") in
  (match G.term g (G.entry g) with
  | Return (Some v) -> (
      match G.kind g v with
      | Const 8 -> ()
      | k -> Alcotest.failf "expected const 8, got %s" (Fmt.str "%a" Ir.Printer.pp_kind k))
  | _ -> Alcotest.fail "expected straight return");
  Alcotest.(check int) "single block" 1 (G.live_block_count g)

let test_mutual_constants () =
  (* Two phis feeding each other with the same constant. *)
  let src =
    {|
    int main(int n) {
      int a = 3;
      int b = 3;
      int i = 0;
      while (i < n) {
        int t = a;
        a = b;
        b = t;
        i = i + 1;
      }
      return a + b;
    }
    |}
  in
  let prog = run_sccp (compile src) in
  Alcotest.(check int) "swap of equal constants folds" 6 (run_int prog [ 7 ]);
  Alcotest.(check int) "no add left" 0
    (count_kind prog "main" (function Binop (Add, a, b) when a <> b -> false | Binop (Add, _, _) -> false | _ -> false))

let test_swap_of_distinct_values_not_folded () =
  (* The classic swap: phis must NOT be folded when values actually
     alternate. *)
  let src =
    {|
    int main(int n) {
      int a = 1;
      int b = 2;
      int i = 0;
      while (i < n) {
        int t = a;
        a = b;
        b = t;
        i = i + 1;
      }
      return a * 10 + b;
    }
    |}
  in
  let prog = run_sccp (compile src) in
  Alcotest.(check int) "even" 12 (run_int prog [ 4 ]);
  Alcotest.(check int) "odd" 21 (run_int prog [ 5 ])

let test_branch_on_propagated_constant () =
  let src =
    {|
    global int side;
    int main(int n) {
      int k = 4;
      int v = k * 2;
      if (v == 8) { side = 1; return n + 1; }
      side = 2;
      return n - 1;
    }
    |}
  in
  let prog = run_sccp (compile src) in
  Alcotest.(check int) "constant branch taken" 6 (run_int prog [ 5 ]);
  let g = Option.get (Ir.Program.find_function prog "main") in
  Alcotest.(check int) "dead side removed" 0
    (count_kind prog "main" (function Binop (Sub, _, _) -> true | _ -> false));
  ignore g

let test_sccp_leaves_genuine_variables () =
  let src = "int main(int n) { int x = n + 1; return x * x; }" in
  let prog = run_sccp (compile src) in
  Alcotest.(check int) "still computes" 36 (run_int prog [ 5 ]);
  Alcotest.(check bool) "multiply remains" true
    (count_kind prog "main" (function Binop (Mul, _, _) -> true | _ -> false) >= 1)

let test_in_pipeline_differential () =
  (* Through the full pipeline with SCCP enabled, semantics hold on a
     mixed program. *)
  let src =
    {|
    global int gs;
    int main(int n) {
      int mode = 2;
      int acc = 0;
      int i = 0;
      while (i < n) {
        if (mode == 2) { acc = acc + i; } else { acc = acc - i; gs = gs + 1; }
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let prog = compile src in
  let prog' = Ir.Program.copy prog in
  ignore (Opt.Pipeline.optimize_program prog');
  check_program_verifies prog';
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "n=%d" n)
        (run_int prog [ n ]) (run_int prog' [ n ]))
    [ 0; 1; 10 ]

let suite =
  [
    test "constant through loop" test_constant_through_loop;
    test "conditionally dead code" test_conditionally_dead_code;
    test "mutual constants" test_mutual_constants;
    test "swap not over-folded" test_swap_of_distinct_values_not_folded;
    test "branch on propagated constant" test_branch_on_propagated_constant;
    test "genuine variables left alone" test_sccp_leaves_genuine_variables;
    test "pipeline differential" test_in_pipeline_differential;
  ]
