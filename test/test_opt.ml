(** Optimization phase tests: targeted unit tests per phase plus
    semantics-preservation checks, including the paper's Listings 1–6. *)

open Ir.Types
module G = Ir.Graph
open Helpers

let ctx_for prog = Opt.Phase.create ~program:prog ()

let optimize_copy prog =
  let prog' = Ir.Program.copy prog in
  ignore (Opt.Pipeline.optimize_program prog');
  check_program_verifies prog';
  prog'

(** Differential check: baseline optimization must not change results. *)
let check_same_results ?(inputs = [ [ 0 ]; [ 1 ]; [ -7 ]; [ 13 ]; [ 100 ] ]) src =
  let prog = compile src in
  let prog' = optimize_copy prog in
  List.iter
    (fun args ->
      let run p =
        match
          Interp.Machine.run ~icache:Interp.Machine.no_icache p
            ~args:(Array.of_list args)
        with
        | r, _ -> Interp.Machine.result_to_string r
        | exception Interp.Machine.Runtime_error m -> "fault: " ^ m
      in
      Alcotest.(check string)
        (Printf.sprintf "args %s" (String.concat "," (List.map string_of_int args)))
        (run prog) (run prog'))
    inputs;
  prog'

let count_kind prog fn pred =
  let g = Option.get (Ir.Program.find_function prog fn) in
  G.fold_instrs g (fun n id -> if pred (G.kind g id) then n + 1 else n) 0

let main_graph prog = Option.get (Ir.Program.find_function prog "main")

(* ---- canonicalize ---- *)

let test_constant_folding () =
  let prog = check_same_results "int main(int x) { return 2 + 3 * 4; }" in
  let g = main_graph prog in
  (* The whole body folds to `return 14`. *)
  match G.term g (G.entry g) with
  | Return (Some v) -> (
      match G.kind g v with
      | Const 14 -> ()
      | k -> Alcotest.failf "expected const 14, got %s" (Fmt.str "%a" Ir.Printer.pp_kind k))
  | _ -> Alcotest.fail "expected return"

let test_algebraic_identities () =
  let cases =
    [
      ("int main(int x) { return x + 0; }", [ 5 ], 5);
      ("int main(int x) { return x * 1; }", [ 5 ], 5);
      ("int main(int x) { return x - x; }", [ 9 ], 0);
      ("int main(int x) { return x ^ x; }", [ 9 ], 0);
      ("int main(int x) { return 0 - x; }", [ 9 ], -9);
      ("int main(int x) { return x % 1; }", [ 9 ], 0);
    ]
  in
  List.iter
    (fun (src, args, expected) ->
      let prog = check_same_results src in
      Alcotest.(check int) src expected (run_int prog args);
      (* No binop survives. *)
      Alcotest.(check int)
        (src ^ " simplified")
        0
        (count_kind prog "main" (function Binop _ -> true | _ -> false)))
    cases

let test_strength_reduction_div () =
  let prog = check_same_results "int main(int x) { return x / 8; }" in
  Alcotest.(check int) "div gone" 0
    (count_kind prog "main" (function Binop (Div, _, _) -> true | _ -> false));
  Alcotest.(check int) "shift introduced" 1
    (count_kind prog "main" (function Binop (Shr, _, _) -> true | _ -> false));
  (* Exactness on negatives (floor semantics). *)
  Alcotest.(check int) "negative" (-2) (run_int prog [ -9 ])

let test_strength_reduction_mul_rem () =
  let prog = check_same_results "int main(int x) { return x * 16 + x % 4; }" in
  Alcotest.(check int) "mul gone" 0
    (count_kind prog "main" (function Binop (Mul, _, _) -> true | _ -> false));
  Alcotest.(check int) "rem gone" 0
    (count_kind prog "main" (function Binop (Rem, _, _) -> true | _ -> false))

let test_not_of_cmp () =
  let prog = check_same_results "bool main(int x) { return !(x < 3); }" in
  Alcotest.(check int) "not gone" 0
    (count_kind prog "main" (function Not _ -> true | _ -> false));
  Alcotest.(check int) "ge 3" 1 (run_int prog [ 3 ])

let test_new_never_null () =
  let prog =
    check_same_results ~inputs:[ [] ]
      "class A { int x; } int main() { A a = new A(5); if (a == null) { return 1; } return 2; }"
  in
  (* The null compare folds, the branch folds, one block remains. *)
  let g = main_graph prog in
  Alcotest.(check int) "single block" 1 (G.live_block_count g);
  Alcotest.(check int) "result" 2 (run_int prog [])

(* ---- simplify-cfg ---- *)

let test_branch_folding_merges_blocks () =
  let prog =
    check_same_results ~inputs:[ [ 1 ]; [ 0 ] ]
      "int main(int x) { if (1 < 2) { return x + 1; } else { return x - 1; } }"
  in
  let g = main_graph prog in
  Alcotest.(check int) "collapsed to one block" 1 (G.live_block_count g)

let test_straightline_merging () =
  let prog = check_same_results "int main(int x) { int a = x + 1; { int b = a * 2; return b; } }" in
  let g = main_graph prog in
  Alcotest.(check int) "one block" 1 (G.live_block_count g)

(* ---- gvn ---- *)

let test_gvn_dedupes () =
  let prog =
    check_same_results "int main(int x) { int a = x * 3 + 1; int b = x * 3 + 1; return a + b; }"
  in
  Alcotest.(check int) "one multiply" 1
    (count_kind prog "main" (function Binop (Mul, _, _) | Binop (Shl, _, _) -> true | _ -> false))

let test_gvn_commutative () =
  let prog = check_same_results "int main(int x, int y) { return x + y + (y + x); }" in
  (* x+y and y+x share one node; one more add combines them. *)
  Alcotest.(check int) "two adds" 2
    (count_kind prog "main" (function Binop (Add, _, _) -> true | _ -> false))

let test_gvn_respects_dominance () =
  (* The same expression in two sibling branches must NOT be deduped. *)
  let src =
    "int main(int x) { if (x > 0) { return x * 7; } else { return x * 7 - 1; } }"
  in
  let prog = check_same_results src in
  Alcotest.(check int) "both multiplies survive" 2
    (count_kind prog "main" (function Binop (Mul, _, _) -> true | _ -> false))

(* ---- conditional elimination ---- *)

let test_condelim_dominating_condition () =
  let src =
    "int main(int x) { if (x > 10) { if (x > 5) { return 1; } return 2; } return 3; }"
  in
  let prog = check_same_results ~inputs:[ [ 11 ]; [ 7 ]; [ 0 ] ] src in
  (* The inner compare is implied: only the outer compare remains. *)
  Alcotest.(check int) "one compare" 1
    (count_kind prog "main" (function Cmp _ -> true | _ -> false))

let test_condelim_contradiction () =
  let src =
    "int main(int x) { if (x < 0) { if (x > 0) { return 1; } return 2; } return 3; }"
  in
  let prog = check_same_results ~inputs:[ [ -1 ]; [ 1 ]; [ 0 ] ] src in
  Alcotest.(check int) "one compare" 1
    (count_kind prog "main" (function Cmp _ -> true | _ -> false))

let test_condelim_same_condition_reuse () =
  let src =
    "int main(int x) { int r = 0; if (x > 3) { r = 1; } if (x > 3) { r = r + 1; } return r; }"
  in
  (* After GVN the second compare is the same node; condelim cannot fold
     it (the merge kills the fact), but results must be preserved. *)
  let prog = check_same_results ~inputs:[ [ 4 ]; [ 2 ] ] src in
  Alcotest.(check int) "r=2 when both taken" 2 (run_int prog [ 10 ])

let test_condelim_null_check () =
  let src =
    {|
    class A { int x; }
    int main(int k) {
      A a = null;
      if (k > 0) { a = new A(k); }
      if (a != null) {
        if (a == null) { return -1; }
        return a.x;
      }
      return 0;
    }
    |}
  in
  let prog = check_same_results ~inputs:[ [ 5 ]; [ 0 ] ] src in
  Alcotest.(check int) "non-null path" 5 (run_int prog [ 5 ])

(* ---- read elimination ---- *)

let test_readelim_same_block () =
  let src =
    "class A { int x; } int main(int k) { A a = new A(k); int s = a.x + a.x; return s; }"
  in
  let prog = check_same_results ~inputs:[ [ 3 ] ] src in
  (* Scalar replacement (or read elim) removes all loads. *)
  Alcotest.(check int) "loads gone" 0
    (count_kind prog "main" (function Load _ -> true | _ -> false))

let test_readelim_store_forwarding () =
  let src =
    {|
    class A { int x; }
    global A shared;
    int main(int k) {
      shared.x = k * 2;
      return shared.x;
    }
    void init() { shared = new A(0); }
    int run(int k) { init(); return main(k); }
    |}
  in
  (* main loads global `shared` twice; the second load and the field read
     after the store are both eliminable. *)
  let prog = compile src in
  let prog' = optimize_copy prog in
  Alcotest.(check int) "field load forwarded" 0
    (count_kind prog' "main" (function Load _ -> true | _ -> false));
  Alcotest.(check int) "one global load" 1
    (count_kind prog' "main" (function Load_global _ -> true | _ -> false))

let test_readelim_call_kills () =
  let src =
    {|
    class A { int x; }
    global A shared;
    void mutate() { shared.x = 99; }
    int main(int k) {
      shared = new A(k);
      int a = shared.x;
      mutate();
      int b = shared.x;
      return a + b;
    }
    |}
  in
  let prog = compile src in
  let prog' = optimize_copy prog in
  let before =
    match Interp.Machine.run prog ~args:[| 1 |] with
    | Some (Interp.Machine.VInt n), _ -> n
    | _ -> Alcotest.fail "expected int"
  in
  Alcotest.(check int) "call invalidates availability" before
    (run_int prog' [ 1 ]);
  Alcotest.(check int) "result is 1 + 99" 100 (run_int prog' [ 1 ])

let test_readelim_store_kills_aliases () =
  let src =
    {|
    class A { int x; }
    int pick(A p, A q, int k) {
      int a = p.x;
      q.x = k;
      return a + p.x;
    }
    int main(int k) {
      A o = new A(7);
      return pick(o, o, k);
    }
    |}
  in
  (* p and q alias: the second p.x must reload after q.x = k. *)
  let prog = compile src in
  let prog' = optimize_copy prog in
  Alcotest.(check int) "aliased store respected" (7 + 5) (run_int prog' [ 5 ]);
  Alcotest.(check bool) "second load survives" true
    (count_kind prog' "pick" (function Load _ -> true | _ -> false) >= 2)

(* ---- escape analysis / scalar replacement ---- *)

let test_pea_scalar_replacement () =
  let src =
    "class Pair { int a; int b; } int main(int x) { Pair p = new Pair(x, 2 * x); p.a = p.a + 1; return p.a + p.b; }"
  in
  let prog = check_same_results ~inputs:[ [ 4 ] ] src in
  Alcotest.(check int) "allocation removed" 0
    (count_kind prog "main" (function New _ -> true | _ -> false));
  Alcotest.(check int) "loads removed" 0
    (count_kind prog "main" (function Load _ -> true | _ -> false));
  Alcotest.(check int) "stores removed" 0
    (count_kind prog "main" (function Store _ -> true | _ -> false))

let test_pea_loop_carried_field () =
  let src =
    {|
    class Box { int v; }
    int main(int n) {
      Box b = new Box(0);
      int i = 0;
      while (i < n) { b.v = b.v + i; i = i + 1; }
      return b.v;
    }
    |}
  in
  let prog = check_same_results ~inputs:[ [ 0 ]; [ 5 ]; [ 10 ] ] src in
  Alcotest.(check int) "allocation removed" 0
    (count_kind prog "main" (function New _ -> true | _ -> false));
  Alcotest.(check int) "sum" 45 (run_int prog [ 10 ])

let test_pea_escape_through_call () =
  let src =
    {|
    class Box { int v; }
    int read(Box b) { return b.v; }
    int main(int x) { Box b = new Box(x); return read(b); }
    |}
  in
  let prog = check_same_results ~inputs:[ [ 3 ] ] src in
  Alcotest.(check int) "escaping allocation kept" 1
    (count_kind prog "main" (function New _ -> true | _ -> false))

let test_pea_escape_through_return () =
  let src =
    {|
    class Box { int v; }
    Box make(int x) { return new Box(x); }
    int main(int x) { Box b = make(x); return b.v; }
    |}
  in
  let prog = check_same_results ~inputs:[ [ 3 ] ] src in
  Alcotest.(check int) "returned allocation kept" 1
    (count_kind prog "make" (function New _ -> true | _ -> false))

let test_pea_escape_through_phi_detected () =
  (* Listing 3's shape: the allocation only escapes through a phi — the
     exact situation duplication resolves. *)
  let src =
    {|
    class A { int x; }
    int main(int k) {
      A a = null;
      A p;
      if (k > 0) { p = new A(0); } else { p = new A(k); }
      return p.x;
    }
    |}
  in
  let prog = compile src in
  let g = main_graph prog in
  let allocs =
    G.fold_instrs g
      (fun acc id ->
        match G.kind g id with New _ -> id :: acc | _ -> acc)
      []
  in
  Alcotest.(check int) "two allocations" 2 (List.length allocs);
  List.iter
    (fun a ->
      match Opt.Pea.escape_state g a with
      | Opt.Pea.Through_phi_only -> ()
      | _ -> Alcotest.fail "expected phi-only escape")
    allocs

(* ---- dce ---- *)

let test_dce_removes_dead_cycle () =
  let src =
    {|
    int main(int n) {
      int dead = 0;
      int live = 0;
      int i = 0;
      while (i < n) {
        dead = dead + 2;
        live = live + 1;
        i = i + 1;
      }
      return live;
    }
    |}
  in
  let prog = check_same_results ~inputs:[ [ 5 ] ] src in
  let g = main_graph prog in
  (* Only two phis survive: i and live. *)
  let phis =
    G.fold_instrs g
      (fun n id -> match G.kind g id with Phi _ -> n + 1 | _ -> n)
      0
  in
  Alcotest.(check int) "dead induction variable removed" 2 phis

let test_dce_keeps_side_effects () =
  let src =
    {|
    global int s;
    int main(int x) { s = x; int unused = x * 99; return s; }
    |}
  in
  let prog = check_same_results ~inputs:[ [ 4 ] ] src in
  Alcotest.(check int) "store survives" 1
    (count_kind prog "main" (function Store_global _ -> true | _ -> false))

(* ---- paper listings as end-to-end baselines ---- *)

let listing1 =
  {|
  int foo(int i) {
    int p;
    if (i > 0) { p = i; } else { p = 13; }
    if (p > 12) { return 12; }
    return i;
  }
  int main(int i) { return foo(i); }
  |}

let test_listing1_semantics_preserved () =
  let prog = check_same_results ~inputs:[ [ 1 ]; [ 14 ]; [ 0 ]; [ -3 ] ] listing1 in
  Alcotest.(check int) "i=14 -> 12" 12 (run_int prog [ 14 ]);
  Alcotest.(check int) "i=1 -> 1" 1 (run_int prog [ 1 ]);
  Alcotest.(check int) "i=0 -> 12 (p=13)" 12 (run_int prog [ 0 ])

let listing5 =
  {|
  class A { int x; }
  global int s;
  int foo(A a, int i) {
    if (i > 0) { s = a.x; } else { s = 0; }
    return a.x;
  }
  int main(int i) { A a = new A(41); return foo(a, i); }
  |}

let test_listing5_partial_redundancy_survives_baseline () =
  (* Without duplication the second read is only partially redundant:
     baseline read elimination must NOT remove it. *)
  let prog = compile listing5 in
  let prog' = optimize_copy prog in
  Alcotest.(check int) "both reads survive baseline" 2
    (count_kind prog' "foo" (function Load _ -> true | _ -> false));
  Alcotest.(check int) "result" 41 (run_int prog' [ 1 ])

let test_work_units_charged () =
  let prog = compile listing1 in
  let ctx = ctx_for prog in
  Ir.Program.iter_functions prog (fun g -> ignore (Opt.Pipeline.optimize ctx g));
  Alcotest.(check bool) "work units accumulated" true (ctx.Opt.Phase.work > 0)

let suite =
  [
    test "constant folding" test_constant_folding;
    test "algebraic identities" test_algebraic_identities;
    test "strength reduction: div" test_strength_reduction_div;
    test "strength reduction: mul/rem" test_strength_reduction_mul_rem;
    test "not of cmp" test_not_of_cmp;
    test "new is never null" test_new_never_null;
    test "branch folding merges blocks" test_branch_folding_merges_blocks;
    test "straight-line merging" test_straightline_merging;
    test "gvn dedupes" test_gvn_dedupes;
    test "gvn commutative" test_gvn_commutative;
    test "gvn respects dominance" test_gvn_respects_dominance;
    test "condelim: dominating condition" test_condelim_dominating_condition;
    test "condelim: contradiction" test_condelim_contradiction;
    test "condelim: merge kills fact" test_condelim_same_condition_reuse;
    test "condelim: null check" test_condelim_null_check;
    test "readelim: same block" test_readelim_same_block;
    test "readelim: store forwarding" test_readelim_store_forwarding;
    test "readelim: call kills" test_readelim_call_kills;
    test "readelim: aliased store kills" test_readelim_store_kills_aliases;
    test "pea: scalar replacement" test_pea_scalar_replacement;
    test "pea: loop-carried field" test_pea_loop_carried_field;
    test "pea: escape through call" test_pea_escape_through_call;
    test "pea: escape through return" test_pea_escape_through_return;
    test "pea: phi-only escape detected" test_pea_escape_through_phi_detected;
    test "dce: dead cycle" test_dce_removes_dead_cycle;
    test "dce: keeps side effects" test_dce_keeps_side_effects;
    test "listing 1 semantics" test_listing1_semantics_preserved;
    test "listing 5 partial redundancy" test_listing5_partial_redundancy_survives_baseline;
    test "work units charged" test_work_units_charged;
  ]
