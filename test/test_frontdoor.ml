(** The async multi-tenant front door: histogram bucket math, token
    buckets with retry-after, weighted-deficit lane dequeue (preemption
    ordering + starvation freedom), the binary framing codec, the
    incremental decoders, and end-to-end event-loop serving under the
    whole-system simulator — byte-identity against the classic
    threaded server, quota sheds with structured retry-after, queue
    backpressure, deadline unification across the lane queue on the
    monotonic clock (clock.jump chaos), and garbage-frame hardening. *)

open Helpers
module F = Dbds.Faults
module Sim = Simtest.Sched
module Simio = Simtest.Simio
module Env = Service.Env
module SB = Service.Broker
module SS = Service.Store
module SC = Service.Client
module SD = Service.Digest
module SP = Service.Protocol
module FD = Service.Frontdoor

let config = Dbds.Config.default

let trio =
  {|
  int f(int x) { int a; if (x > 0) { a = x; } else { a = 1; } return a * 2; }
  int g(int x) { int b; if (x > 3) { b = x + 1; } else { b = 2; } return b + b; }
  int main(int x) { return f(x) + g(x); }
|}

let main_ir () =
  let prog = compile trio in
  Ir.Printer.graph_to_string (Option.get (Ir.Program.find_function prog "main"))

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_hist_buckets () =
  Alcotest.(check int) "sub-ms is bucket 0" 0 (FD.Hist.bucket_of_ms 0.4);
  Alcotest.(check int) "1ms starts bucket 1" 1 (FD.Hist.bucket_of_ms 1.0);
  Alcotest.(check int) "1.9ms stays bucket 1" 1 (FD.Hist.bucket_of_ms 1.9);
  Alcotest.(check int) "2ms starts bucket 2" 2 (FD.Hist.bucket_of_ms 2.0);
  Alcotest.(check int) "3ms in [2,4)" 2 (FD.Hist.bucket_of_ms 3.0);
  Alcotest.(check int) "1024ms in [1024,2048)" 11 (FD.Hist.bucket_of_ms 1024.);
  Alcotest.(check int) "huge latencies clamp to the top" 31
    (FD.Hist.bucket_of_ms 1e18)

let test_hist_quantiles () =
  let h = FD.Hist.create () in
  Alcotest.(check (float 0.)) "empty histogram reads 0" 0. (FD.Hist.quantile h 0.99);
  (* 90 fast (bucket 1: upper 2ms), 10 slow (bucket 7: [64,128)). *)
  for _ = 1 to 90 do
    FD.Hist.add h 1.5
  done;
  for _ = 1 to 10 do
    FD.Hist.add h 100.
  done;
  Alcotest.(check int) "count" 100 (FD.Hist.count h);
  Alcotest.(check (float 0.)) "p50 from the fast bucket" 2. (FD.Hist.quantile h 0.50);
  Alcotest.(check (float 0.)) "p90 still fast" 2. (FD.Hist.quantile h 0.90);
  Alcotest.(check (float 0.)) "p95 lands in the slow bucket" 128.
    (FD.Hist.quantile h 0.95);
  Alcotest.(check (float 0.)) "p99 too" 128. (FD.Hist.quantile h 0.99)

(* ------------------------------------------------------------------ *)
(* Token buckets                                                       *)
(* ------------------------------------------------------------------ *)

let test_quota_exhaustion_and_refill () =
  let q = FD.Quota.create ~rate:2.0 ~burst:3.0 in
  Alcotest.(check bool) "burst 1" true (FD.Quota.try_take q ~now:10.0);
  Alcotest.(check bool) "burst 2" true (FD.Quota.try_take q ~now:10.0);
  Alcotest.(check bool) "burst 3" true (FD.Quota.try_take q ~now:10.0);
  Alcotest.(check bool) "empty bucket sheds" false (FD.Quota.try_take q ~now:10.0);
  let hint = FD.Quota.retry_after_ms q in
  Alcotest.(check bool)
    (Printf.sprintf "hint %dms covers one token at 2/s" hint)
    true
    (hint > 0 && hint <= 500);
  (* 0.25s later half a token has accrued — still shed, smaller hint. *)
  Alcotest.(check bool) "half refilled still sheds" false
    (FD.Quota.try_take q ~now:10.25);
  Alcotest.(check bool) "hint shrank" true (FD.Quota.retry_after_ms q <= 250);
  (* One full second refills two tokens. *)
  Alcotest.(check bool) "refilled" true (FD.Quota.try_take q ~now:11.25);
  Alcotest.(check bool) "refilled twice" true (FD.Quota.try_take q ~now:11.25);
  Alcotest.(check bool) "but not past burst accounting" false
    (FD.Quota.try_take q ~now:11.25)

(* ------------------------------------------------------------------ *)
(* Weighted-deficit lanes                                              *)
(* ------------------------------------------------------------------ *)

let test_lanes_preemption_and_starvation_freedom () =
  let l = FD.Lanes.create () in
  for i = 1 to 4 do
    FD.Lanes.push l FD.Lanes.Batch (Printf.sprintf "b%d" i)
  done;
  for i = 1 to 4 do
    FD.Lanes.push l FD.Lanes.Interactive (Printf.sprintf "i%d" i)
  done;
  let rec drain acc =
    match FD.Lanes.pop l with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  let order = drain [] in
  Alcotest.(check (list string))
    "interactive preempts, batch never starves"
    [ "i1"; "i2"; "i3"; "b1"; "i4"; "b2"; "b3"; "b4" ]
    order;
  (* Sustained interactive load: batch still progresses 1-in-4. *)
  let l = FD.Lanes.create () in
  FD.Lanes.push l FD.Lanes.Batch "b";
  let batch_served = ref false in
  for i = 1 to 12 do
    FD.Lanes.push l FD.Lanes.Interactive (Printf.sprintf "i%d" i);
    match FD.Lanes.pop l with
    | Some "b" -> batch_served := true
    | Some _ -> ()
    | None -> Alcotest.fail "pop on non-empty lanes"
  done;
  Alcotest.(check bool) "batch served under sustained interactive load" true
    !batch_served;
  (* An idle lane's deficit resets: it cannot hoard priority. *)
  let l = FD.Lanes.create () in
  FD.Lanes.push l FD.Lanes.Interactive "i";
  Alcotest.(check (option string)) "pops" (Some "i") (FD.Lanes.pop l);
  Alcotest.(check (option string)) "empty" None (FD.Lanes.pop l);
  Alcotest.(check bool) "is_empty" true (FD.Lanes.is_empty l)

(* ------------------------------------------------------------------ *)
(* Binary framing + incremental decoders                               *)
(* ------------------------------------------------------------------ *)

let msg verb fields = { SP.verb; fields }

let test_binary_roundtrip () =
  let m =
    msg "compile"
      [ ("config", "dbds"); ("fn", "main"); ("ir", "line1\nline2\x00\xff") ]
  in
  (match SP.decode_binary (SP.render_binary m) with
  | SP.Msg (m', used) ->
      Alcotest.(check bool) "message survives" true (m' = m);
      Alcotest.(check int) "consumes the frame"
        (String.length (SP.render_binary m))
        used
  | _ -> Alcotest.fail "binary roundtrip failed");
  (* An unknown verb rides the extension escape (code 0). *)
  let w = msg "weird-verb" [ ("k", "v") ] in
  (match SP.decode_binary (SP.render_binary w) with
  | SP.Msg (w', _) -> Alcotest.(check bool) "extended verb survives" true (w' = w)
  | _ -> Alcotest.fail "extended roundtrip failed");
  Alcotest.(check (option int)) "verb code table" (Some 1)
    (SP.code_of_verb "compile");
  Alcotest.(check (option string)) "code back to verb" (Some "compile")
    (SP.verb_of_code 1)

let test_binary_decoder_hardening () =
  (* Truncation at every prefix must ask for more, never raise. *)
  let frame = SP.render_binary (msg "ping" [ ("pad", String.make 40 'x') ]) in
  for i = 0 to String.length frame - 1 do
    match SP.decode_binary (String.sub frame 0 i) with
    | SP.More -> ()
    | SP.Msg _ -> Alcotest.failf "prefix %d parsed as a whole message" i
    | SP.Err e -> Alcotest.failf "prefix %d errored: %s" i e
  done;
  (* Garbage magic / verb codes are structured errors. *)
  (match SP.decode_binary "junk" with
  | SP.Err _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  (match SP.decode_binary "\xBF\x63\x01" with
  | SP.Err _ -> ()
  | _ -> Alcotest.fail "unknown verb code accepted");
  (* An oversized length prefix is refused before any allocation. *)
  let big = "\xBF\x03\x01\x02hi\xff\xff\xff\xff" in
  (match SP.decode_binary big with
  | SP.Err _ -> ()
  | _ -> Alcotest.fail "oversized field accepted");
  (* A binary frame fed to the text decoder fails fast (it could
     otherwise sit newline-free under the line bound forever). *)
  match SP.decode frame with
  | SP.Err _ -> ()
  | _ -> Alcotest.fail "binary frame not rejected by the text decoder"

let test_text_decoder_incremental () =
  let m =
    msg "compile" [ ("fn", "main"); ("ir", "a\nb\nc") ]
  in
  let wire = SP.render m ^ SP.render (msg "ping" []) in
  (* Byte-at-a-time: every strict prefix of the first message is More. *)
  let first_len = String.length (SP.render m) in
  for i = 0 to first_len - 1 do
    match SP.decode (String.sub wire 0 i) with
    | SP.More -> ()
    | SP.Msg _ -> Alcotest.failf "prefix %d parsed early" i
    | SP.Err e -> Alcotest.failf "prefix %d errored: %s" i e
  done;
  (match SP.decode wire with
  | SP.Msg (m', used) ->
      Alcotest.(check bool) "first message" true (m' = m);
      Alcotest.(check int) "consumed exactly the first" first_len used;
      let rest = String.sub wire used (String.length wire - used) in
      (match SP.decode rest with
      | SP.Msg (p, used') ->
          Alcotest.(check string) "second message" "ping" p.SP.verb;
          Alcotest.(check int) "consumed the rest" (String.length rest) used'
      | _ -> Alcotest.fail "second message lost")
  | _ -> Alcotest.fail "pipelined messages not decoded");
  (* Unbounded newline-free garbage is an error, not unbounded More. *)
  match SP.decode (String.make (SP.max_line_bytes + 1) 'a') with
  | SP.Err _ -> ()
  | _ -> Alcotest.fail "newline-free garbage not bounded

"

(* ------------------------------------------------------------------ *)
(* End-to-end under the simulator                                      *)
(* ------------------------------------------------------------------ *)

(* Run [f env] as the client fiber of a simulated frontdoor (and
   optionally assert on the schedule outcome).  [f] must end by
   shutting the server down. *)
let run_sim ?(seed = 11) ?(fd_config = FD.default_config) ?(faults = []) f =
  let sched = Sim.create ~seed () in
  let io = Simio.create ~faults sched in
  let env = Simio.env io in
  let out =
    Sim.run sched (fun () ->
        let store = SS.create ~env ~dir:"/store" () in
        let broker = SB.create ~env ~workers:2 ~store:(Some store) () in
        let srv =
          env.Env.spawn "frontdoor" (fun () ->
              FD.serve ~env ~config:fd_config ~sock:"/fd" ~broker ())
        in
        f env;
        srv.Env.join ())
  in
  if not out.Sim.ok then
    Alcotest.failf "simulated schedule not clean: %d hung, crashes: %s"
      (List.length out.Sim.hung)
      (String.concat "; " (List.map snd out.Sim.crashed))

let connect ?tenant ?lane ?binary env sock =
  SC.connect ~env ~deadline_s:2.0 ~io_deadline_s:30.0 ?tenant ?lane ?binary
    ~sock ()

(* A raw [Env.conn] to a server that may still be binding its socket
   (the {!SC.connect} retry loop, without the client on top). *)
let rec raw_connect ?(tries = 200) env sock =
  match env.Env.connect sock with
  | conn -> conn
  | exception Env.Net ((Env.Not_found | Env.Refused), _) when tries > 0 ->
      env.Env.sleep 0.01;
      raw_connect ~tries:(tries - 1) env sock

let shutdown env =
  let c = connect env "/fd" in
  (match SC.shutdown_server c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown: %s" e);
  SC.close c

let compile_ok c ~ir =
  match SC.compile ~config ~fn:"main" ~ir c with
  | Ok (SB.Done { ir = out; _ }) -> out
  | Ok o -> Alcotest.failf "compile outcome: %s" (SB.outcome_label o)
  | Error e -> Alcotest.failf "compile: %s" e

(* The tentpole invariant: the event-loop front end (text and binary,
   tenants and lanes) serves byte-identical artifacts to the classic
   thread-per-connection server, and the digest-keyed [lookup] verb
   finds the published artifact. *)
let test_end_to_end_matches_classic_server () =
  let ir = main_ir () in
  let via_fd_text = ref "" and via_fd_bin = ref "" and via_classic = ref "" in
  let looked_up = ref None in
  (* Frontdoor, one text + one binary client. *)
  run_sim (fun env ->
      let c = connect ~tenant:"alice" ~lane:"interactive" env "/fd" in
      via_fd_text := compile_ok c ~ir;
      SC.close c;
      let cb = connect ~tenant:"bob" ~binary:true env "/fd" in
      Alcotest.(check bool) "binary ping" true (SC.ping cb);
      via_fd_bin := compile_ok cb ~ir;
      let digest =
        SD.of_request (SD.request_of_text ~config ~fn:"main" ir)
      in
      (match SC.lookup ~digest cb with
      | Ok r -> looked_up := r
      | Error e -> Alcotest.failf "lookup: %s" e);
      (match SC.stats cb with
      | Ok (broker_line, _, _) ->
          Alcotest.(check bool) "broker stats over binary" true
            (String.length broker_line > 0)
      | Error e -> Alcotest.failf "stats: %s" e);
      SC.close cb;
      shutdown env);
  (* The classic server, same request. *)
  let sched = Sim.create ~seed:12 () in
  let io = Simio.create sched in
  let env = Simio.env io in
  let out =
    Sim.run sched (fun () ->
        let store = SS.create ~env ~dir:"/store" () in
        let broker = SB.create ~env ~workers:2 ~store:(Some store) () in
        let srv =
          env.Env.spawn "server" (fun () ->
              Service.Server.serve ~env ~sock:"/srv" ~broker ())
        in
        let c = SC.connect ~env ~deadline_s:2.0 ~sock:"/srv" () in
        via_classic := compile_ok c ~ir;
        (match SC.shutdown_server c with
        | Ok () -> ()
        | Error e -> Alcotest.failf "shutdown: %s" e);
        SC.close c;
        srv.Env.join ())
  in
  Alcotest.(check bool) "classic schedule clean" true out.Sim.ok;
  Alcotest.(check bool) "frontdoor produced IR" true (!via_fd_text <> "");
  Alcotest.(check string) "binary framing returns the same bytes" !via_fd_text
    !via_fd_bin;
  Alcotest.(check string) "byte-identical to the classic server" !via_fd_text
    !via_classic;
  Alcotest.(check (option string)) "lookup finds the published artifact"
    (Some !via_fd_text) !looked_up

(* Quota exhaustion: the second request inside the same bucket window
   is shed with a positive structured retry-after hint — and the
   shed request was never admitted (no silent loss: the reply says
   exactly what happened). *)
let test_quota_shed_carries_retry_after () =
  let ir = main_ir () in
  run_sim
    ~fd_config:
      { FD.default_config with fd_tenant_rate = 1.0; fd_tenant_burst = 1.0 }
    (fun env ->
      let c = connect ~tenant:"hammer" env "/fd" in
      (match SC.compile_ex ~config ~fn:"main" ~ir c with
      | Ok (SB.Done _, _) -> ()
      | Ok (o, _) -> Alcotest.failf "first request: %s" (SB.outcome_label o)
      | Error e -> Alcotest.failf "first request: %s" e);
      (match SC.compile_ex ~config ~fn:"main" ~ir c with
      | Ok (SB.Shed, Some retry_ms) ->
          Alcotest.(check bool)
            (Printf.sprintf "retry-after %dms positive" retry_ms)
            true (retry_ms > 0)
      | Ok (SB.Shed, None) -> Alcotest.fail "shed without retry-after"
      | Ok (o, _) -> Alcotest.failf "expected shed, got %s" (SB.outcome_label o)
      | Error e -> Alcotest.failf "second request: %s" e);
      SC.close c;
      shutdown env)

(* Queue backpressure: with one dispatcher busy and the lane bounded,
   a pipelined burst sheds the overflow with retry-after while every
   admitted request is still answered. *)
let test_queue_shed_under_pipelined_burst () =
  let ir = main_ir () in
  run_sim
    ~fd_config:
      { FD.default_config with fd_dispatchers = 1; fd_queue_limit = 2 }
    (fun env ->
      let conn = raw_connect env "/fd" in
      let m =
        SC.compile_msg ~delay_ms:200 ~config ~fn:"main" ~ir ()
      in
      (* Three requests land before the dispatcher can drain: the
         first two are admitted (slots: dispatcher + queue), the
         overflow is shed immediately. *)
      SP.write_conn conn m;
      SP.write_conn conn m;
      SP.write_conn conn m;
      let deadline = env.Env.mono () +. 30.0 in
      let read () =
        match SP.read_conn ~deadline conn with
        | Ok r -> r
        | Error e -> Alcotest.failf "reply: %s" e
      in
      let replies = [ read (); read (); read () ] in
      let statuses =
        List.filter_map (fun r -> SP.field r "status") replies
      in
      let shed = List.filter (( = ) "shed") statuses in
      let done_ = List.filter (fun s -> s = "done" || s = "done-cache") statuses in
      Alcotest.(check int) "one overflow shed" 1 (List.length shed);
      Alcotest.(check int) "both admitted requests answered" 2
        (List.length done_);
      Alcotest.(check bool) "shed reply carries retry-after" true
        (List.exists
           (fun r ->
             SP.field r "status" = Some "shed"
             && SP.retry_after_of_reply r <> None)
           replies);
      conn.Env.close_conn ();
      shutdown env)

(* Deadline unification on the monotonic clock: time spent waiting in
   the lane queue counts against --deadline-ms (the request behind a
   slow one times out)... *)
let test_deadline_counts_queue_wait () =
  let ir = main_ir () in
  run_sim
    ~fd_config:{ FD.default_config with fd_dispatchers = 1 }
    (fun env ->
      let conn = raw_connect env "/fd" in
      let slow = SC.compile_msg ~delay_ms:3000 ~config ~fn:"main" ~ir () in
      let hurried =
        SC.compile_msg ~deadline_ms:1000 ~config ~fn:"main" ~ir ()
      in
      SP.write_conn conn slow;
      SP.write_conn conn hurried;
      let deadline = env.Env.mono () +. 30.0 in
      let read () =
        match SP.read_conn ~deadline conn with
        | Ok r -> Option.value (SP.field r "status") ~default:"?"
        | Error e -> Alcotest.failf "reply: %s" e
      in
      let statuses = List.sort compare [ read (); read () ] in
      Alcotest.(check (list string))
        "queue wait expires the hurried request" [ "done"; "timed-out" ]
        statuses;
      conn.Env.close_conn ();
      shutdown env)

(* ... and a wall-clock jump (NTP step) mid-run neither expires nor
   immortalizes a deadline — the regression test for clock.jump chaos
   against the frontdoor's admission deadlines. *)
let test_clock_jump_does_not_expire_deadlines () =
  let ir = main_ir () in
  run_sim
    ~faults:[ { F.seed = 0; site = F.Clock_jump; hit = 1; fn = None } ]
    (fun env ->
      let c = connect ~tenant:"t" env "/fd" in
      (* Spans the +1h wall step at virtual second 1: on a wall-clock
         deadline this would expire instantly; on mono it completes. *)
      match
        SC.compile ~deadline_ms:8000 ~delay_ms:2500 ~config ~fn:"main" ~ir c
      with
      | Ok (SB.Done _) ->
          SC.close c;
          shutdown env
      | Ok o -> Alcotest.failf "clock jump: %s" (SB.outcome_label o)
      | Error e -> Alcotest.failf "clock jump: %s" e)

(* Garbage hardening at the event loop: junk bytes get a structured
   protocol-error reply and a connection close — and the server keeps
   serving fresh connections afterwards. *)
let test_garbage_gets_structured_error () =
  run_sim (fun env ->
      (* Text garbage. *)
      let conn = raw_connect env "/fd" in
      conn.Env.send "total garbage\n";
      let deadline = env.Env.mono () +. 10.0 in
      (match SP.read_conn ~deadline conn with
      | Ok r ->
          Alcotest.(check (option string)) "structured rejection"
            (Some "rejected") (SP.field r "status");
          Alcotest.(check bool) "names the protocol error" true
            (match SP.field r "message" with
            | Some m ->
                String.length m >= 14 && String.sub m 0 14 = "protocol error"
            | None -> false)
      | Error e -> Alcotest.failf "garbage reply: %s" e);
      (* The server hangs up after answering. *)
      (match SP.read_conn ~deadline conn with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "connection survived a desynchronized stream");
      conn.Env.close_conn ();
      (* A half-open client (partial message, then close) is culled
         silently without wedging the loop. *)
      let half = raw_connect env "/fd" in
      half.Env.send "dbds/1 compile 2\nfn 4\nmai";
      half.Env.close_conn ();
      (* Fresh connections still served. *)
      let c = connect env "/fd" in
      Alcotest.(check bool) "server still alive" true (SC.ping c);
      SC.close c;
      shutdown env)

(* ------------------------------------------------------------------ *)
(* Harness integration                                                 *)
(* ------------------------------------------------------------------ *)

module H = Simtest.Harness

(* Frontdoor serving is as deterministic as the classic server: same
   seed, same trace — and the bundle records the topology. *)
let test_harness_frontdoor_deterministic () =
  let spec = H.builder ~seed:77 () |> H.with_frontdoor true in
  let a = H.run spec in
  let b = H.run spec in
  Alcotest.(check string) "same trace hash" a.H.r_trace_hash b.H.r_trace_hash;
  Alcotest.(check bool) "same outcomes" true (a.H.r_outcomes = b.H.r_outcomes);
  let reparsed = H.parse_bundle (H.render_bundle a) in
  Alcotest.(check bool) "bundle keeps the frontdoor flag" true
    reparsed.H.frontdoor;
  (* The flag is new-field-only: a classic bundle never mentions it. *)
  let classic = H.render_bundle (H.run (H.builder ~seed:77 ())) in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "classic bundles unchanged" false
    (contains classic "frontdoor")

(* Chaos sweep with the frontdoor in front: tenants, lanes, mixed
   framing, garbage + slow-loris fibers, seeded net/disk/clock faults —
   and still zero invariant violations, every request accounted for. *)
let test_harness_frontdoor_chaos_sweep () =
  let results =
    H.run_seeds ~seeds:3 (H.builder ~seed:500 () |> H.with_frontdoor true)
  in
  List.iter
    (fun (r : H.result) ->
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d clean" r.H.r_spec.H.seed)
        []
        (List.map
           (fun v -> v.H.vio_kind ^ ": " ^ v.H.vio_detail)
           r.H.r_violations);
      Alcotest.(check bool) "every request accounted for" true
        (List.fold_left (fun acc (_, n) -> acc + n) 0 r.H.r_counts
        = r.H.r_spec.H.clients * r.H.r_spec.H.requests_per_client))
    results

(* A reduced load sweep (the full one runs in the bench): every
   request accounted for, sheds hinted, artifacts identical to the
   oracle, schedules clean — and overload degrades gracefully
   (goodput at 2x within 20% of the uncontended point's). *)
let test_load_sweep_reduced () =
  let row =
    Harness.Servicebench.load_sweep ~capacity_rps:100. ~requests:24
      ~mults:[ 0.5; 2.0 ] ()
  in
  Alcotest.(check int) "two points" 2 (List.length row.Harness.Metrics.fd_points);
  Alcotest.(check bool) "schedules clean" true row.Harness.Metrics.fd_clean;
  Alcotest.(check bool) "artifacts identical" true
    row.Harness.Metrics.fd_identical;
  List.iter
    (fun (p : Harness.Metrics.frontdoor_point) ->
      Alcotest.(check int)
        (Printf.sprintf "%.1fx: every request accounted for"
           p.Harness.Metrics.fd_mult)
        p.Harness.Metrics.fd_sent
        (p.Harness.Metrics.fd_done + p.Harness.Metrics.fd_shed
       + p.Harness.Metrics.fd_failed);
      Alcotest.(check bool) "sheds hinted" true
        p.Harness.Metrics.fd_retry_after_ok)
    row.Harness.Metrics.fd_points;
  match row.Harness.Metrics.fd_points with
  | [ uncontended; overloaded ] ->
      Alcotest.(check bool) "overload still completes work" true
        (overloaded.Harness.Metrics.fd_done > 0);
      Alcotest.(check bool) "goodput degrades gracefully" true
        (overloaded.Harness.Metrics.fd_goodput_rps
        >= 0.8 *. uncontended.Harness.Metrics.fd_goodput_rps)
  | _ -> Alcotest.fail "unexpected point count"

let suite =
  [
    test "hist: log2 bucket math" test_hist_buckets;
    test "hist: quantiles" test_hist_quantiles;
    test "quota: exhaustion, hints, refill" test_quota_exhaustion_and_refill;
    test "lanes: preemption + starvation freedom"
      test_lanes_preemption_and_starvation_freedom;
    test "binary framing roundtrips" test_binary_roundtrip;
    test "binary decoder hardening" test_binary_decoder_hardening;
    test "text decoder is incremental" test_text_decoder_incremental;
    test "frontdoor matches the classic server byte-for-byte"
      test_end_to_end_matches_classic_server;
    test "quota shed carries retry-after" test_quota_shed_carries_retry_after;
    test "queue shed under a pipelined burst"
      test_queue_shed_under_pipelined_burst;
    test "deadlines count lane-queue wait" test_deadline_counts_queue_wait;
    test "clock.jump cannot expire a deadline"
      test_clock_jump_does_not_expire_deadlines;
    test "garbage frames get structured errors"
      test_garbage_gets_structured_error;
    test "harness: frontdoor runs are deterministic"
      test_harness_frontdoor_deterministic;
    test "harness: frontdoor chaos sweep stays clean"
      test_harness_frontdoor_chaos_sweep;
    test "bench: reduced load sweep" test_load_sweep_reduced;
  ]
