(** Tiered VM tests: promotion, dispatch, deoptimization (forced and
    genuinely-broken-body), cache eviction, drift recompilation, and the
    differential guarantee that the engine's observable behaviour equals
    a never-compiled tier-0 run. *)

open Helpers
module E = Vm.Engine
module M = Interp.Machine

(* A helper hot enough to promote almost immediately. *)
let hot_src =
  {|
  global int acc;
  int work(int n) {
    int s = 0;
    int i = 0;
    while (i < n) @0.95 {
      if (i % 3 == 0) @0.33 { s = s + i * 2; } else { s = s - i; }
      i = i + 1;
    }
    acc = acc + s;
    return s;
  }
  int main(int x, int y) {
    int t = 0;
    int j = 0;
    while (j < y) @0.9 {
      t = t + work(x + j);
      j = j + 1;
    }
    return t;
  }
  |}

let eager_policy =
  {
    Vm.Policy.default with
    Vm.Policy.invocation_threshold = 2;
    backedge_threshold = 16;
    profile_period = 8;
  }

let eager_config ?deopt_plan ?cache_capacity () =
  E.config ~policy:eager_policy ?deopt_plan ?cache_capacity ~jobs:1 ~batch:1 ()

(* Observable behaviour of a never-compiled run: result and final
   globals. *)
let tier0_truth prog args =
  let result, _, globals = M.run_full prog ~args in
  (M.result_to_string result, globals)

let check_matches_tier0 prog args (result, globals) =
  let t0_result, t0_globals = tier0_truth prog args in
  Alcotest.(check string) "result matches tier 0" t0_result
    (M.result_to_string result);
  Alcotest.(check bool) "globals match tier 0" true (globals = t0_globals)

let test_promotion_and_dispatch () =
  let prog = compile hot_src in
  let eng = E.create ~config:(eager_config ()) prog in
  let args = [| 40; 12 |] in
  for _ = 1 to 4 do
    let result, _, globals = E.run_full eng ~args in
    check_matches_tier0 prog args (result, globals)
  done;
  let stats = E.finish eng in
  Alcotest.(check bool) "work got promoted" true
    (Vm.Codecache.peek (E.cache eng) "work" <> None);
  Alcotest.(check bool) "promotions happened" true
    (stats.Vm.Vmstats.promotions >= 1);
  Alcotest.(check bool) "tier-1 dispatches happened" true
    (stats.Vm.Vmstats.optimized_calls > 0);
  Alcotest.(check bool) "background compiles succeeded" true
    (stats.Vm.Vmstats.compiles >= 1)

let test_steady_state_faster () =
  let prog = compile hot_src in
  let args = [| 60; 20 |] in
  let tiered = E.create ~config:(eager_config ()) prog in
  let tier0 =
    E.create ~config:(E.config ~policy:Vm.Policy.never ()) prog
  in
  (* Warm both engines, then compare one steady-state run. *)
  for _ = 1 to 5 do
    ignore (E.run_full tiered ~args);
    ignore (E.run_full tier0 ~args)
  done;
  let _, tiered_stats, _ = E.run_full tiered ~args in
  let _, tier0_stats, _ = E.run_full tier0 ~args in
  Alcotest.(check bool) "tier-0-only engine never promotes" true
    ((E.finish tier0).Vm.Vmstats.promotions = 0);
  Alcotest.(check bool)
    (Printf.sprintf "steady-state cycles improve (%.0f < %.0f)"
       tiered_stats.M.cycles tier0_stats.M.cycles)
    true
    (tiered_stats.M.cycles < tier0_stats.M.cycles)

let test_forced_deopt_identical () =
  let prog = compile hot_src in
  let args = [| 40; 12 |] in
  (* Fire a forced deoptimization in work's 3rd tier-1 frame. *)
  let eng =
    E.create ~config:(eager_config ~deopt_plan:("work", 3) ()) prog
  in
  let observed = ref [] in
  for _ = 1 to 5 do
    let result, _, globals = E.run_full eng ~args in
    check_matches_tier0 prog args (result, globals);
    observed := (result, globals) :: !observed
  done;
  let stats = E.finish eng in
  Alcotest.(check bool) "a deopt happened" true (stats.Vm.Vmstats.deopts >= 1);
  Alcotest.(check bool) "the deopt was forced" true
    (List.exists
       (fun (e : Vm.Deopt.event) -> e.Vm.Deopt.de_reason = Vm.Deopt.Forced)
       (E.deopt_log eng));
  Alcotest.(check bool) "invalidation recorded" true
    (stats.Vm.Vmstats.invalidations >= 1)

let test_broken_body_deopt_identical () =
  (* Install a genuinely broken optimized body by hand: it performs a
     visible side effect (global store) and then null-dereferences.  The
     deopt must undo the store and re-run tier 0 — byte-identical. *)
  let prog = compile hot_src in
  let args = [| 40; 12 |] in
  let eng = E.create ~config:(eager_config ()) prog in
  let broken = Ir.Graph.copy (Option.get (Ir.Program.find_function prog "work")) in
  let entry = Ir.Graph.entry broken in
  let garbage = Ir.Graph.append broken entry (Ir.Types.Const 999) in
  let _store =
    Ir.Graph.append broken entry (Ir.Types.Store_global ("acc", garbage))
  in
  let null = Ir.Graph.append broken entry Ir.Types.Null in
  let _crash = Ir.Graph.append broken entry (Ir.Types.Load (null, "round")) in
  ignore
    (Vm.Codecache.install (E.cache eng) ~fn:"work" ~body:broken ~samples:0
       ~work:0);
  let result, _, globals = E.run_full eng ~args in
  check_matches_tier0 prog args (result, globals);
  let stats = E.finish eng in
  Alcotest.(check bool) "deopted out of the broken body" true
    (stats.Vm.Vmstats.deopts >= 1);
  Alcotest.(check bool) "broken entry invalidated" true
    (List.for_all
       (fun (e : Vm.Codecache.entry) -> e.Vm.Codecache.ce_body != broken)
       (Vm.Codecache.entries (E.cache eng)))

let test_cache_eviction () =
  (* A cache too small for every promoted body: evictions fire, results
     stay correct. *)
  let prog = compile hot_src in
  let args = [| 40; 12 |] in
  let eng = E.create ~config:(eager_config ~cache_capacity:20 ()) prog in
  for _ = 1 to 5 do
    let result, _, globals = E.run_full eng ~args in
    check_matches_tier0 prog args (result, globals)
  done;
  let stats = E.finish eng in
  Alcotest.(check bool) "evictions happened" true
    (stats.Vm.Vmstats.evictions >= 1);
  Alcotest.(check bool) "cache stays within sight of the budget" true
    (Vm.Codecache.size (E.cache eng) <= 1)

let test_compile_failure_contained () =
  (* A fault plan that crashes every background compile: the function
     stays interpreted, attempts are capped, behaviour is unchanged. *)
  let prog = compile hot_src in
  let args = [| 40; 12 |] in
  let compile =
    {
      Dbds.Config.dbds with
      Dbds.Config.fault_plan =
        Some
          {
            Dbds.Faults.seed = 0;
            site = Dbds.Faults.Parallel_worker;
            hit = 1;
            fn = None;
          };
    }
  in
  let eng =
    E.create ~config:(E.config ~policy:eager_policy ~compile ~jobs:1 ()) prog
  in
  for _ = 1 to 6 do
    let result, _, globals = E.run_full eng ~args in
    check_matches_tier0 prog args (result, globals)
  done;
  let stats = E.finish eng in
  Alcotest.(check bool) "compiles failed" true
    (stats.Vm.Vmstats.compile_failures >= 1);
  (* The cap is per function; this program has two promotable ones. *)
  Alcotest.(check bool) "attempts capped by max_compiles" true
    (stats.Vm.Vmstats.promotions + stats.Vm.Vmstats.recompilations
    <= 2 * eager_policy.Vm.Policy.max_compiles);
  Alcotest.(check bool) "failures reported" true (E.failures eng <> [])

let test_drift_recompilation () =
  (* Promote under one branch behaviour, then flip the arguments so
     sampled tier-0 runs observe the opposite behaviour: the drift check
     must request a recompile. *)
  let src =
    {|
    int skewed(int n, int sel) {
      int s = 0;
      int i = 0;
      while (i < n) @0.9 {
        if (sel > 0) @0.5 { s = s + i * 3; } else { s = s - i; }
        i = i + 1;
      }
      return s;
    }
    int main(int x, int y) {
      int t = 0;
      int j = 0;
      while (j < 8) @0.9 { t = t + skewed(x, y); j = j + 1; }
      return t;
    }
    |}
  in
  let prog = compile src in
  let policy =
    {
      eager_policy with
      Vm.Policy.profile_period = 2;
      drift_min_samples = 8;
      drift_threshold = 0.3;
      max_compiles = 3;
    }
  in
  let eng = E.create ~config:(E.config ~policy ~jobs:1 ()) prog in
  for _ = 1 to 3 do
    ignore (E.run_full eng ~args:[| 30; 1 |])
  done;
  for _ = 1 to 6 do
    ignore (E.run_full eng ~args:[| 30; 0 |])
  done;
  let stats = E.finish eng in
  Alcotest.(check bool) "drift triggered a recompilation" true
    (stats.Vm.Vmstats.recompilations >= 1)

let test_jobs_deterministic () =
  (* Same engine configuration at jobs 1 and 4: identical results and
     identical counters. *)
  let prog () = compile hot_src in
  let args = [| 40; 12 |] in
  let run_with jobs =
    let eng =
      E.create ~config:(E.config ~policy:eager_policy ~jobs ~batch:2 ()) (prog ())
    in
    let outs = ref [] in
    for _ = 1 to 5 do
      let result, st, globals = E.run_full eng ~args in
      outs := (M.result_to_string result, st.M.cycles, globals) :: !outs
    done;
    (!outs, Vm.Vmstats.fingerprint (E.finish eng))
  in
  let o1, f1 = run_with 1 in
  let o4, f4 = run_with 4 in
  Alcotest.(check bool) "per-run outputs equal" true (o1 = o4);
  Alcotest.(check string) "vmstats fingerprints equal" f1 f4

let test_codecache_unit () =
  let g name =
    let prog = compile hot_src in
    Ir.Graph.copy (Option.get (Ir.Program.find_function prog name))
  in
  let c = Vm.Codecache.create ~capacity:10_000 in
  let e1 = Vm.Codecache.install c ~fn:"work" ~body:(g "work") ~samples:5 ~work:7 in
  Alcotest.(check int) "versions start at 1" 1 e1.Vm.Codecache.ce_version;
  let e2 = Vm.Codecache.install c ~fn:"main" ~body:(g "main") ~samples:1 ~work:2 in
  Alcotest.(check int) "versions are monotonic" 2 e2.Vm.Codecache.ce_version;
  Alcotest.(check int) "two entries live" 2 (Vm.Codecache.size c);
  (match Vm.Codecache.lookup c "work" with
  | Some e -> Alcotest.(check int) "hit counted" 1 e.Vm.Codecache.ce_hits
  | None -> Alcotest.fail "work missing");
  (* Reinstall replaces in place, version bumps. *)
  let e3 = Vm.Codecache.install c ~fn:"work" ~body:(g "work") ~samples:9 ~work:1 in
  Alcotest.(check int) "reinstall bumps version" 3 e3.Vm.Codecache.ce_version;
  Alcotest.(check int) "still two entries" 2 (Vm.Codecache.size c);
  Vm.Codecache.invalidate c "work";
  Alcotest.(check bool) "invalidated" true (Vm.Codecache.peek c "work" = None);
  Alcotest.(check int) "one left" 1 (Vm.Codecache.size c)

(* The cache is shared between the dispatching domain and background
   installers: a storm of parallel install/lookup/invalidate must keep
   the LRU size bound and mint distinct, dense version numbers. *)
let test_codecache_concurrent () =
  let prog = compile hot_src in
  let body name = Ir.Graph.copy (Option.get (Ir.Program.find_function prog name)) in
  let unit_size = Costmodel.Estimate.graph_size (body "work") in
  (* Room for about two bodies, so the storm constantly evicts. *)
  let capacity = (2 * unit_size) + 1 in
  let c = Vm.Codecache.create ~capacity in
  let rounds = 25 in
  let storm d =
    let versions = ref [] in
    for i = 0 to rounds - 1 do
      let fn = Printf.sprintf "fn%d" ((i + d) mod 4) in
      let e = Vm.Codecache.install c ~fn ~body:(body "work") ~samples:i ~work:i in
      versions := e.Vm.Codecache.ce_version :: !versions;
      ignore (Vm.Codecache.lookup c fn);
      if i mod 7 = d then Vm.Codecache.invalidate c fn
    done;
    !versions
  in
  let domains = List.init 4 (fun d -> Domain.spawn (fun () -> storm d)) in
  let versions = List.concat_map Domain.join domains in
  Alcotest.(check bool) "size budget holds after the storm" true
    (Vm.Codecache.used c <= capacity);
  let sorted = List.sort compare versions in
  Alcotest.(check int) "every install minted a version" (4 * rounds)
    (List.length sorted);
  Alcotest.(check bool) "versions are distinct" true
    (List.length (List.sort_uniq compare sorted) = 4 * rounds);
  (* Monotonic and gap-free: the n-th install (in version order) got
     version n. *)
  List.iteri
    (fun i v -> Alcotest.(check int) "versions are dense from 1" (i + 1) v)
    sorted;
  let e = Vm.Codecache.install c ~fn:"after" ~body:(body "work") ~samples:0 ~work:0 in
  Alcotest.(check int) "next version continues the sequence"
    ((4 * rounds) + 1) e.Vm.Codecache.ce_version

let test_policy_unit () =
  let p = { Vm.Policy.default with Vm.Policy.invocation_threshold = 3 } in
  let c = Vm.Policy.fresh_counters () in
  Alcotest.(check bool) "cold" false (Vm.Policy.should_promote p c);
  c.Vm.Policy.invocations <- 3;
  Alcotest.(check bool) "hot by invocations" true (Vm.Policy.should_promote p c);
  c.Vm.Policy.pending <- true;
  Alcotest.(check bool) "pending blocks" false (Vm.Policy.should_promote p c);
  c.Vm.Policy.pending <- false;
  c.Vm.Policy.attempts <- p.Vm.Policy.max_compiles;
  Alcotest.(check bool) "attempt cap blocks" false (Vm.Policy.should_promote p c);
  Alcotest.(check bool) "never policy never promotes" false
    (Vm.Policy.should_promote Vm.Policy.never
       {
         Vm.Policy.invocations = 1_000_000;
         backedges = 1_000_000;
         attempts = 0;
         pending = false;
       })

let test_bundle_profile_roundtrip () =
  let profile = Interp.Profile.create () in
  for _ = 1 to 12 do
    Interp.Profile.record profile ~fn:"work" ~bid:2 ~taken_true:true
  done;
  Interp.Profile.record profile ~fn:"work" ~bid:2 ~taken_true:false;
  let rendered = Interp.Profile.render profile in
  let b =
    {
      Dbds.Bundle.b_fn = "work";
      b_site = "transform.apply";
      b_exn = "test";
      b_plan = None;
      b_config = Dbds.Config.dbds;
      b_profile = Some rendered;
      b_ir = "fn work(1 params) entry=b0\nb0:\n  return\n";
    }
  in
  let b' = Dbds.Bundle.parse (Dbds.Bundle.render b) in
  Alcotest.(check bool) "profile section survives" true
    (b'.Dbds.Bundle.b_profile = Some (String.trim rendered ^ "\n")
    || b'.Dbds.Bundle.b_profile = Some rendered
    || b'.Dbds.Bundle.b_profile = Some (String.trim rendered));
  (match b'.Dbds.Bundle.b_profile with
  | Some p ->
      let parsed = Interp.Profile.parse p in
      Alcotest.(check int) "counts survive" 13 (Interp.Profile.samples parsed)
  | None -> Alcotest.fail "profile lost");
  (* Bundles without a profile stay parseable (backward compat). *)
  let b2 = Dbds.Bundle.parse (Dbds.Bundle.render { b with b_profile = None }) in
  Alcotest.(check bool) "no-profile bundle roundtrips" true
    (b2.Dbds.Bundle.b_profile = None)

let test_compile_crash_bundle_records_profile () =
  (* A crashing background compile writes a bundle carrying the profile
     snapshot; replaying it reproduces the failure. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "dbds-vm-bundles" in
  List.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Array.to_list (Sys.readdir dir) with Sys_error _ -> []);
  let prog = compile hot_src in
  let compile =
    {
      Dbds.Config.dbds with
      Dbds.Config.fault_plan =
        Some
          {
            Dbds.Faults.seed = 0;
            site = Dbds.Faults.Parallel_worker;
            hit = 1;
            fn = None;
          };
      bundle_dir = Some dir;
    }
  in
  let eng =
    E.create ~config:(E.config ~policy:eager_policy ~compile ~jobs:1 ()) prog
  in
  for _ = 1 to 4 do
    ignore (E.run_full eng ~args:[| 40; 12 |])
  done;
  match E.failures eng with
  | [] -> Alcotest.fail "expected a contained compile failure"
  | f :: _ -> (
      match f.Dbds.Driver.fail_bundle with
      | None -> Alcotest.fail "expected a bundle path"
      | Some path ->
          let b = Dbds.Bundle.read path in
          Alcotest.(check bool) "bundle has the profile snapshot" true
            (b.Dbds.Bundle.b_profile <> None);
          (match Dbds.Driver.replay_bundle b with
          | `Reproduced _ -> ()
          | `Clean -> Alcotest.fail "bundle did not reproduce"))

let suite =
  [
    test "promotion and dispatch" test_promotion_and_dispatch;
    test "steady state beats tier 0" test_steady_state_faster;
    test "forced deopt is transparent" test_forced_deopt_identical;
    test "broken body deopt is byte-identical" test_broken_body_deopt_identical;
    test "cache eviction under tiny budget" test_cache_eviction;
    test "compile failures contained" test_compile_failure_contained;
    test "drift triggers recompilation" test_drift_recompilation;
    test "jobs 1 = jobs 4" test_jobs_deterministic;
    test "codecache unit" test_codecache_unit;
    test "codecache concurrent storm" test_codecache_concurrent;
    test "policy unit" test_policy_unit;
    test "bundle profile roundtrip" test_bundle_profile_roundtrip;
    test "compile crash bundle records profile" test_compile_crash_bundle_records_profile;
  ]
