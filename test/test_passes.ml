(** Pass-manager tests: spec grammar round-trips, driver pipeline
    validation, preservation contracts (every declared-preserved analysis
    equals a fresh recompute after the pass, on random programs), and
    per-pass instrumentation determinism across [jobs]. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)
(* ------------------------------------------------------------------ *)

let roundtrip s =
  match Opt.Spec.of_string s with
  | Error msg -> Alcotest.failf "%S did not parse: %s" s msg
  | Ok spec -> (
      let printed = Opt.Spec.to_string spec in
      match Opt.Spec.of_string printed with
      | Error msg -> Alcotest.failf "%S reprinted as unparseable %S: %s" s printed msg
      | Ok spec' ->
          Alcotest.(check bool)
            (Printf.sprintf "%S round-trips via %S" s printed)
            true
            (Opt.Spec.equal spec spec');
          printed)

let test_spec_roundtrip () =
  let canonical =
    [
      "canon";
      "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),dbds{iters=3}";
      "fix{rounds=2}(canon,dce)";
      "dbds{iters=5,threshold=0.5}";
      "fix(canon,fix(gvn,dce))";
      "copyprop";
      "lospre";
      "condelim_dup";
      "condelim_dup{iters=3}";
      "fix(canon,copyprop,lospre,dce),condelim_dup{iters=2}";
    ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string) "canonical form is a fixed point" s (roundtrip s))
    canonical;
  (* Whitespace and long-form names are accepted but not canonical. *)
  Alcotest.(check string)
    "whitespace normalizes" "fix(canon,dce),dbds"
    (roundtrip " fix ( canon , dce ) , dbds { } ")

let test_spec_errors () =
  let rejects s =
    match Opt.Spec.of_string s with
    | Error _ -> ()
    | Ok spec ->
        Alcotest.failf "%S parsed as %S" s (Opt.Spec.to_string spec)
  in
  List.iter rejects
    [ ""; "fix(canon"; "canon)"; "canon,,dce"; "fix()"; "a{x}"; "a{x=}"; "a b" ]

(* ------------------------------------------------------------------ *)
(* Driver pipeline validation                                          *)
(* ------------------------------------------------------------------ *)

let spec_of s =
  match Opt.Spec.of_string s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "%S: %s" s msg

let test_default_specs () =
  let printed config =
    Opt.Spec.to_string (Dbds.Driver.default_spec config)
  in
  Alcotest.(check string)
    "dbds"
    "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),dbds{iters=3}"
    (printed Dbds.Config.dbds);
  Alcotest.(check string)
    "baseline" "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce)"
    (printed Dbds.Config.off);
  Alcotest.(check string)
    "backtracking runs the classic group again after the tier"
    "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),backtracking{iters=3},fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce)"
    (printed Dbds.Config.backtracking);
  Alcotest.(check string)
    "licm joins the fixpoint group"
    "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce,licm)"
    (printed { Dbds.Config.off with Dbds.Config.licm = true });
  Alcotest.(check string)
    "condelim_dup reruns the classic group after the tier"
    "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),condelim_dup{iters=3},fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce)"
    (printed Dbds.Config.condelim_dup);
  (* Every default spec validates against the driver's own registry. *)
  List.iter
    (fun config ->
      match Dbds.Driver.validate_spec config (Dbds.Driver.default_spec config) with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "default spec rejected: %s" msg)
    Dbds.Config.[ default; off; dupalot; backtracking; condelim_dup; paranoid ]

let test_validate_spec () =
  let config = Dbds.Config.default in
  let ok s =
    match Dbds.Driver.validate_spec config (spec_of s) with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%S rejected: %s" s msg
  in
  let rejected s =
    match Dbds.Driver.validate_spec config (spec_of s) with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%S accepted" s
  in
  ok "fix(dce,gvn,canon,simplify),dbds{iters=1}";
  ok "inline,canonicalize,simplify-cfg,licm";
  ok "dupalot{iters=2,threshold=0.1},backtracking{iters=1}";
  ok "fix(canon,pea{max_rounds=2},dce)";
  ok "fix(canon,copyprop,lospre,dce)";
  ok "condelim_dup{iters=2}";
  rejected "bogus";
  rejected "canon{x=1}";
  rejected "dbds{iters=nope}";
  rejected "dbds{depth=3}";
  rejected "pea{rounds=2}";
  rejected "pea{max_rounds=nope}";
  rejected "copyprop{iters=2}";
  rejected "condelim_dup{threshold=0.5}";
  rejected "fix(inline,canon)"

(* [describe_spec] backs `dbdsc --print-passes`: every per-function
   pass of the spec appears once, in order, with its declared
   contracts. *)
let test_describe_spec () =
  let config = Dbds.Config.default in
  let described s =
    Dbds.Driver.describe_spec config (spec_of s)
  in
  let names rows = List.map (fun (n, _, _) -> n) rows in
  Alcotest.(check (list string))
    "pipeline order, inline skipped, fix flattened, repeats collapsed"
    [ "canonicalize"; "dce"; "dbds" ]
    (names (described "inline,fix(canon,dce),dbds,canon"));
  let rows = described "fix(canon,copyprop,lospre,dce),condelim_dup" in
  Alcotest.(check (list string))
    "upgrade passes and the tier are described"
    [ "canonicalize"; "copyprop"; "lospre"; "dce"; "condelim_dup" ]
    (names rows);
  List.iter
    (fun name ->
      let _, preserves, enables =
        List.find (fun (n, _, _) -> n = name) rows
      in
      Alcotest.(check bool)
        (name ^ " declares all analyses preserved")
        true
        (List.length preserves = List.length Ir.Analyses.all_kinds);
      Alcotest.(check bool)
        (name ^ " declares an enables list")
        true (enables <> None))
    [ "copyprop"; "lospre" ]

(* The pea cap flows from the config into the resolved default spec —
   and only when non-default, so historical spec renderings (and the
   digests built on them) stay stable. *)
let test_pea_cap_in_default_spec () =
  let printed config = Opt.Spec.to_string (Dbds.Driver.default_spec config) in
  Alcotest.(check string)
    "capped pea appears in the fixpoint group"
    "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea{max_rounds=2},dce),dbds{iters=3}"
    (printed { Dbds.Config.dbds with Dbds.Config.pea_max_rounds = 2 });
  Alcotest.(check string)
    "the default cap is invisible"
    "inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),dbds{iters=3}"
    (printed { Dbds.Config.dbds with Dbds.Config.pea_max_rounds = 0 });
  match
    Dbds.Driver.validate_spec
      { Dbds.Config.dbds with Dbds.Config.pea_max_rounds = 2 }
      (Dbds.Driver.default_spec
         { Dbds.Config.dbds with Dbds.Config.pea_max_rounds = 2 })
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "capped default spec rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Preservation contracts (property, jobs 1 and 4 driver runs)         *)
(* ------------------------------------------------------------------ *)

let compile_seed seed =
  let src = Workloads.Progen.generate ~seed () in
  match Lang.Frontend.compile src with
  | prog -> (src, prog)
  | exception Lang.Frontend.Error msg ->
      QCheck2.Test.fail_reportf "seed %d: frontend failed: %s\n%s" seed msg src

let classic_passes =
  List.map
    (fun name ->
      match Opt.Pipeline.resolve_classic name [] with
      | Ok p -> p
      | Error msg -> failwith msg)
    (Opt.Pipeline.classic_names @ [ "licm" ])

(* After each classic pass, every analysis it declares preserved must
   equal a fresh recompute — on every function of a random program, with
   all three analyses primed so the claim is actually exercised. *)
let prop_preservation seed =
  let _src, prog = compile_seed seed in
  let ctx = Opt.Phase.create ~program:prog () in
  ctx.Opt.Phase.check_contracts <- true;
  List.iter
    (fun name ->
      match Ir.Program.find_function prog name with
      | None -> ()
      | Some g ->
          List.iter
            (fun (pass : Opt.Phase.t) ->
              ignore (Ir.Analyses.dom g);
              ignore (Ir.Analyses.loops g);
              ignore (Ir.Analyses.frequency g);
              (try ignore (Opt.Phase.run_pass ctx pass g)
               with Opt.Phase.Contract_violated { pass; analysis; reason } ->
                 QCheck2.Test.fail_reportf
                   "seed %d: %s broke its %s preservation contract on %s: %s"
                   seed pass analysis name reason);
              List.iter
                (fun kind ->
                  match Ir.Analyses.check g kind with
                  | Ok () -> ()
                  | Error reason ->
                      QCheck2.Test.fail_reportf
                        "seed %d: after %s, preserved %s is stale on %s: %s"
                        seed pass.Opt.Phase.pass_name
                        (Ir.Analyses.kind_to_string kind)
                        name reason)
                pass.Opt.Phase.preserves)
            classic_passes)
    (Ir.Program.function_names prog);
  true

(* The full paranoid driver (verifier + contract audits after every
   pass) must contain nothing on clean programs — under jobs 1 and 4. *)
let prop_paranoid_driver seed =
  let _src, prog = compile_seed seed in
  List.iter
    (fun jobs ->
      let prog' = Ir.Program.copy prog in
      let report =
        Dbds.Driver.optimize_program_report ~config:Dbds.Config.paranoid ~jobs
          prog'
      in
      match report.Dbds.Driver.rep_failures with
      | [] -> ()
      | f :: _ ->
          QCheck2.Test.fail_reportf "seed %d: jobs=%d contained %s at %s" seed
            jobs f.Dbds.Driver.fail_fn f.Dbds.Driver.fail_site)
    [ 1; 4 ];
  true

(* ------------------------------------------------------------------ *)
(* Per-pass instrumentation                                            *)
(* ------------------------------------------------------------------ *)

(* The deterministic columns (everything except wall time). *)
let table_key ctx =
  List.map
    (fun (name, (st : Opt.Phase.pass_stat)) ->
      (name, st.Opt.Phase.runs, st.Opt.Phase.fired, st.Opt.Phase.pwork,
       st.Opt.Phase.size_delta))
    (Opt.Phase.pass_table ctx)

let test_pass_table_determinism () =
  let _src, prog = compile_seed 42 in
  let run jobs =
    let prog' = Ir.Program.copy prog in
    let report = Dbds.Driver.optimize_program_report ~jobs prog' in
    let ctx = report.Dbds.Driver.rep_ctx in
    ( table_key ctx,
      ctx.Opt.Phase.work,
      ctx.Opt.Phase.analysis_hits,
      ctx.Opt.Phase.analysis_misses )
  in
  let t1, w1, h1, m1 = run 1 in
  let t4, w4, h4, m4 = run 4 in
  Alcotest.(check bool) "pass table has rows" true (t1 <> []);
  Alcotest.(check bool) "pass tables agree" true (t1 = t4);
  Alcotest.(check int) "work agrees" w1 w4;
  Alcotest.(check int) "analysis hits agree" h1 h4;
  Alcotest.(check int) "analysis misses agree" m1 m4

let test_pass_table_contents () =
  let _src, prog = compile_seed 7 in
  let report = Dbds.Driver.optimize_program_report ~jobs:1 prog in
  let table = Opt.Phase.pass_table report.Dbds.Driver.rep_ctx in
  List.iter
    (fun name ->
      match List.assoc_opt name table with
      | None -> Alcotest.failf "pass %s missing from the table" name
      | Some (st : Opt.Phase.pass_stat) ->
          Alcotest.(check bool)
            (name ^ " ran") true
            (st.Opt.Phase.runs > 0);
          Alcotest.(check bool)
            (name ^ " fired <= runs") true
            (st.Opt.Phase.fired <= st.Opt.Phase.runs))
    [ "canonicalize"; "dce"; "gvn"; "dbds" ]

(* Baseline Pipeline.optimize_program rides the same parallel +
   containment path: deterministic merged context for any [jobs]. *)
let test_baseline_optimize_program_jobs () =
  let _src, prog = compile_seed 11 in
  let run jobs =
    let prog' = Ir.Program.copy prog in
    let ctx = Opt.Pipeline.optimize_program ~jobs prog' in
    (table_key ctx, ctx.Opt.Phase.work, prog')
  in
  let t1, w1, p1 = run 1 in
  let t4, w4, p4 = run 4 in
  Alcotest.(check bool) "pass tables agree" true (t1 = t4);
  Alcotest.(check int) "work agrees" w1 w4;
  List.iter
    (fun name ->
      let ir p =
        Ir.Printer.graph_to_string (Option.get (Ir.Program.find_function p name))
      in
      Alcotest.(check string) (name ^ " IR identical") (ir p1) (ir p4))
    (Ir.Program.function_names p1)

(* A custom --passes reordering produces runnable, verifying IR with the
   same observable behavior. *)
let test_custom_pipeline_behavior () =
  let src, prog = compile_seed 23 in
  let config =
    {
      Dbds.Config.default with
      Dbds.Config.passes =
        Some (spec_of "fix(dce,gvn,canon,simplify),dbds{iters=1}");
    }
  in
  let prog' = Ir.Program.copy prog in
  ignore (Dbds.Driver.optimize_program ~config prog');
  check_program_verifies prog';
  List.iter
    (fun args ->
      let a = run_int ~fuel:2_000_000 prog args
      and b = run_int ~fuel:2_000_000 prog' args in
      if a <> b then
        Alcotest.failf "custom pipeline diverged on seed 23: %d vs %d\n%s" a b
          src)
    [ [ 0; 0 ]; [ 1; 7 ]; [ -9; 3 ] ]

(* Regression: folding a branch in condelim can cut a whole region off
   the CFG; its blocks still hold edges into reachable merges.  The
   verifier must not demand dominance for phi inputs on those
   never-taken edges (seeds found by the paranoid fuzz property). *)
let test_paranoid_unreachable_pred () =
  List.iter
    (fun seed -> ignore (prop_paranoid_driver seed))
    [ 716681; 716889; 717255; 717439; 717648 ]

let seed_gen = QCheck2.Gen.int_bound 1_000_000

let suite =
  [
    test "spec round-trip" test_spec_roundtrip;
    test "spec errors" test_spec_errors;
    test "default specs" test_default_specs;
    test "validate spec" test_validate_spec;
    test "describe spec" test_describe_spec;
    test "pea cap flows into the default spec" test_pea_cap_in_default_spec;
    test "pass table determinism (jobs 1 vs 4)" test_pass_table_determinism;
    test "pass table contents" test_pass_table_contents;
    test "baseline optimize_program jobs" test_baseline_optimize_program_jobs;
    test "custom pipeline behavior" test_custom_pipeline_behavior;
    qtest ~count:60 "preservation contracts hold (progen)" seed_gen
      prop_preservation;
    qtest ~count:25 "paranoid driver contains nothing (jobs 1 and 4)" seed_gen
      prop_paranoid_driver;
    test "paranoid: unreachable phi predecessors (regression)"
      test_paranoid_unreachable_pred;
  ]
