(** Direct unit tests for the SSA reconstruction utility (it is also
    exercised transitively by every duplication test). *)

open Ir.Types
module G = Ir.Graph
module B = Ir.Builder
open Helpers

(* entry -> (left | right) -> join -> exit(uses v).  We hand-create a
   second definition of v in [right] and ask repair to fix the use. *)
let split_def_graph () =
  let b = B.create ~n_params:1 () in
  let x = B.param b 0 in
  let zero = B.const b 0 in
  let cond = B.cmp b Gt x zero in
  let left = B.new_block b in
  let right = B.new_block b in
  let join = B.new_block b in
  B.branch b cond ~if_true:left ~if_false:right;
  B.switch b left;
  let v_left = B.binop b Add x x in
  B.jump b join;
  B.switch b right;
  let v_right = B.binop b Mul x x in
  B.jump b join;
  B.switch b join;
  (* Deliberately broken SSA: join uses v_left although left does not
     dominate join (the verifier would reject this). *)
  let use = B.binop b Add v_left zero in
  B.ret b use;
  (B.graph b, left, right, join, v_left, v_right, use)

let test_repair_inserts_phi () =
  let g, _, right, join, v_left, v_right, use = split_def_graph () in
  (* Before repair the graph violates dominance. *)
  (match Ir.Verifier.verify_result g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fixture should be broken before repair");
  let inserted =
    Ir.Ssa_repair.repair g ~classes:[ (v_left, [ (right, v_right) ]) ]
  in
  check_verifies g;
  Alcotest.(check int) "one phi inserted" 1 (List.length inserted);
  let phi = List.hd inserted in
  Alcotest.(check int) "phi lives in the join" join (G.block_of g phi);
  (* The use now reads the phi. *)
  (match G.kind g use with
  | Binop (Add, a, _) -> Alcotest.(check int) "use reads phi" phi a
  | _ -> Alcotest.fail "unexpected use kind");
  (* Semantics: x>0 -> x+x, else x*x (plus 0). *)
  let run args =
    match Interp.Machine.run_graph g ~args with
    | Some (Interp.Machine.VInt n), _ -> n
    | _ -> Alcotest.fail "int expected"
  in
  Alcotest.(check int) "positive" 14 (run [| 7 |]);
  Alcotest.(check int) "negative" 9 (run [| -3 |])

let test_repair_use_dominated_by_original_untouched () =
  (* A use inside the original def's own block needs no rewriting. *)
  let b = B.create ~n_params:1 () in
  let x = B.param b 0 in
  let v = B.binop b Add x x in
  let w = B.binop b Mul v v in
  B.ret b w;
  let g = B.graph b in
  let dummy_block = G.add_block g in
  let copy = G.append g dummy_block (Binop (Add, x, x)) in
  G.set_term g dummy_block (Return (Some copy));
  ignore (Ir.Ssa_repair.repair g ~classes:[ (v, [ (dummy_block, copy) ]) ]);
  (match G.kind g w with
  | Binop (Mul, a, bb) ->
      Alcotest.(check int) "left operand unchanged" v a;
      Alcotest.(check int) "right operand unchanged" v bb
  | _ -> Alcotest.fail "unexpected");
  ()

let test_repair_trivial_phi_collapsed () =
  (* If both reaching defs are the same value, no phi should survive. *)
  let g, _, right, _, v_left, _, use = split_def_graph () in
  (* Use v_left itself as the "copy": the repair's phi would be
     phi(v_left, v_left) and must collapse. *)
  ignore use;
  ignore (Ir.Ssa_repair.repair g ~classes:[ (v_left, [ (right, v_left) ]) ]);
  let phis =
    G.fold_instrs g
      (fun n id -> match G.kind g id with Phi _ -> n + 1 | _ -> n)
      0
  in
  Alcotest.(check int) "no phi survives" 0 phis

let test_repair_through_loop () =
  (* The duplicated-def pattern inside a loop: repair must thread the
     reaching definition around the back edge. *)
  let src =
    {|
    int main(int x) {
      int p;
      if (x > 0) { p = x; } else { p = 3; }
      int v = p * 2;
      int acc = 0;
      int i = 0;
      while (i < 4) {
        acc = acc + v;
        i = i + 1;
      }
      return acc;
    }
    |}
  in
  let prog = compile src in
  let g = Option.get (Ir.Program.find_function prog "main") in
  (* Duplicate the phi-merge; SSA repair must fix v's uses inside the
     loop below. *)
  let dom = Ir.Dom.compute g in
  let loops = Ir.Loops.compute dom in
  let m =
    G.fold_blocks g
      (fun acc bid ->
        if
          G.pred_count g bid >= 2
          && G.phis g bid <> []
          && not (Ir.Loops.is_header loops bid)
        then bid :: acc
        else acc)
      []
    |> List.hd
  in
  ignore (Dbds.Transform.duplicate g ~merge:m ~pred:(List.hd (G.preds g m)));
  check_verifies g;
  Alcotest.(check int) "positive path" 40 (run_int prog [ 5 ]);
  Alcotest.(check int) "negative path" 24 (run_int prog [ -5 ])

(* Entry-into-loop-body edge (the irreducible shape the adversarial lab
   generates): a side entry jumps into the middle of a loop, so the
   header no longer dominates the body and its definitions need repair.
   Dominance must place the body's idom above the loop, natural-loop
   detection must see no loop, and repair must phi both broken values. *)
let test_repair_entry_into_loop_body () =
  let g =
    Ir.Parse.parse_graph
      "fn f(2 params) entry=b0\n\
       b0:\n\
       v0 = param 0\n\
       v1 = param 1\n\
       v2 = const 0\n\
       v3 = const 1\n\
       v4 = cmp.gt v1, v2\n\
       branch v4 ? b4 : b1  @0.50\n\
       b4:\n\
       v10 = const 5\n\
       v11 = add v0, v0\n\
       jump b2\n\
       b1:  ; preds: b0, b3\n\
       v5 = phi [v2, v9]\n\
       v6 = add v0, v3\n\
       jump b2\n\
       b2:\n\
       v7 = mul v6, v6\n\
       jump b3\n\
       b3:\n\
       v9 = add v5, v3\n\
       v12 = cmp.lt v9, v1\n\
       branch v12 ? b1 : b5  @0.50\n\
       b5:\n\
       v13 = add v9, v7\n\
       return v13\n"
  in
  (* Resolve textual ids to arena ids via kinds (the parser remaps). *)
  let find pred =
    G.fold_instrs g (fun acc id -> if pred (G.kind g id) then Some id else acc)
      None
    |> Option.get
  in
  let v5 = find (function Phi _ -> true | _ -> false) in
  (* Identify blocks structurally: the side entry holds the const 5, the
     header holds the (only) phi. *)
  let side = ref (-1) and header = ref (-1) in
  G.iter_blocks g (fun b ->
      G.iter_block_instrs g b (fun id ->
          match G.kind g id with
          | Const 5 -> side := b
          | _ -> ());
      G.iter_phis g b (fun _ -> header := b));
  let alt_counter = ref (-1) and alt_x = ref (-1) and hdr_x = ref (-1) in
  G.iter_block_instrs g !side (fun id ->
      match G.kind g id with
      | Const 5 -> alt_counter := id
      | Binop (Add, _, _) -> alt_x := id
      | _ -> ());
  G.iter_block_instrs g !header (fun id ->
      match G.kind g id with Binop (Add, _, _) -> hdr_x := id | _ -> ());
  let dom = Ir.Dom.compute g in
  Alcotest.(check int) "no natural loops despite the cycle" 0
    (List.length (Ir.Loops.loops (Ir.Loops.compute dom)));
  let inserted =
    Ir.Ssa_repair.repair g
      ~classes:
        [
          (v5, [ (!side, !alt_counter) ]); (!hdr_x, [ (!side, !alt_x) ]);
        ]
  in
  check_verifies g;
  Alcotest.(check bool) "phis inserted at the side-entry join" true
    (List.length inserted >= 2);
  let prog = Ir.Program.of_graph g in
  Alcotest.(check int) "side-entry path" 25 (run_int prog [ 3; 9 ]);
  Alcotest.(check int) "header path" 17 (run_int prog [ 3; 0 ])

let suite =
  [
    test "repair inserts phi at join" test_repair_inserts_phi;
    test "entry into loop body" test_repair_entry_into_loop_body;
    test "use in def block untouched" test_repair_use_dominated_by_original_untouched;
    test "trivial phi collapsed" test_repair_trivial_phi_collapsed;
    test "repair through loop" test_repair_through_loop;
  ]
