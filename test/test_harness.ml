(** Harness tests: metric arithmetic, geomeans, report structure, and the
    evaluation's headline invariants on a small sample. *)

open Helpers
module M = Harness.Metrics

let mk ~cycles ~size ~work =
  {
    M.peak_cycles = cycles;
    code_size = size;
    compile_work = work;
    compile_wall_s = 0.0;
    duplications = 0;
    candidates = 0;
    contained = [];
    passes = [];
    analysis_hits = 0;
    analysis_misses = 0;
    run_icache_hits = 0;
    run_icache_misses = 0;
    result_value = "0";
  }

let test_peak_delta () =
  let baseline = mk ~cycles:110.0 ~size:100 ~work:100 in
  let faster = mk ~cycles:100.0 ~size:100 ~work:100 in
  Alcotest.(check (float 1e-9)) "10% faster" 10.0 (M.peak_delta ~baseline faster);
  let slower = mk ~cycles:121.0 ~size:100 ~work:100 in
  Alcotest.(check bool) "slower is negative" true
    (M.peak_delta ~baseline slower < 0.0)

let test_size_and_compile_deltas () =
  let baseline = mk ~cycles:1.0 ~size:100 ~work:200 in
  let m = mk ~cycles:1.0 ~size:150 ~work:250 in
  Alcotest.(check (float 1e-9)) "size +50%" 50.0 (M.size_delta ~baseline m);
  Alcotest.(check (float 1e-9)) "compile +25%" 25.0 (M.compile_delta ~baseline m)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "empty" 0.0 (M.geomean_pct []);
  Alcotest.(check (float 1e-9)) "singleton" 10.0 (M.geomean_pct [ 10.0 ]);
  (* geomean of +100% and -50%: ratios 2.0 and 0.5 -> 1.0 -> 0%. *)
  Alcotest.(check (float 1e-6)) "cancels" 0.0 (M.geomean_pct [ 100.0; -50.0 ])

let test_runner_measures_benchmark () =
  let b = List.hd Workloads.Micro.suite.Workloads.Suite.benchmarks in
  let m = Harness.Runner.measure ~config:Dbds.Config.off b in
  Alcotest.(check bool) "cycles positive" true (m.M.peak_cycles > 0.0);
  Alcotest.(check bool) "size positive" true (m.M.code_size > 0);
  Alcotest.(check bool) "work positive" true (m.M.compile_work > 0);
  Alcotest.(check int) "baseline performs no duplication" 0 m.M.duplications

let test_runner_row_invariants () =
  (* One full row: results agree and dupalot duplicates at least as much
     as DBDS. *)
  let b = List.hd Workloads.Dacapo.suite.Workloads.Suite.benchmarks in
  let row = Harness.Runner.run_benchmark b in
  Alcotest.(check string) "results agree" row.M.baseline.M.result_value
    row.M.dbds.M.result_value;
  Alcotest.(check bool) "dupalot >= dbds duplications" true
    (row.M.dupalot.M.duplications >= row.M.dbds.M.duplications);
  Alcotest.(check bool) "dupalot compile work >= dbds" true
    (row.M.dupalot.M.compile_work >= row.M.dbds.M.compile_work)

let test_report_summarize () =
  let suite =
    {
      Workloads.Suite.suite_name = "mini";
      figure = "Figure X";
      benchmarks = [ List.hd Workloads.Micro.suite.Workloads.Suite.benchmarks ];
    }
  in
  let rows = Harness.Runner.run_suite suite in
  let summary = Harness.Report.summarize suite rows in
  Alcotest.(check int) "one row" 1 (List.length summary.Harness.Report.rows);
  (* Rendering must not raise. *)
  let text = Fmt.str "%a" Harness.Report.pp_suite summary in
  Alcotest.(check bool) "renders" true (String.length text > 100)

let test_raytrace_shape () =
  (* The evaluation's headline cautionary tale (Figure 8 / EXPERIMENTS.md):
     on raytrace, DBDS declines every candidate while dupalot regresses
     peak performance by blowing the i-cache. *)
  let b =
    Option.get (Workloads.Suite.find_benchmark Workloads.Octane.suite "raytrace")
  in
  let row = Harness.Runner.run_benchmark b in
  let dbds_peak = M.peak_delta ~baseline:row.M.baseline row.M.dbds in
  let dupalot_peak = M.peak_delta ~baseline:row.M.baseline row.M.dupalot in
  Alcotest.(check (float 0.5)) "DBDS leaves raytrace alone" 0.0 dbds_peak;
  Alcotest.(check bool) "dupalot regresses >5%" true (dupalot_peak < -5.0);
  Alcotest.(check bool) "dupalot bloats code >30%" true
    (M.size_delta ~baseline:row.M.baseline row.M.dupalot > 30.0)

let test_akkapp_shape () =
  (* Figure 7's nuance: dupalot is slightly *ahead* of DBDS on akkaPP
     because the trade-off declines a marginal merge that still pays. *)
  let b =
    Option.get
      (Workloads.Suite.find_benchmark Workloads.Micro.suite "akkaPP")
  in
  let row = Harness.Runner.run_benchmark b in
  let dbds_peak = M.peak_delta ~baseline:row.M.baseline row.M.dbds in
  let dupalot_peak = M.peak_delta ~baseline:row.M.baseline row.M.dupalot in
  Alcotest.(check bool) "both improve" true (dbds_peak > 2.0 && dupalot_peak > 2.0);
  Alcotest.(check bool) "dupalot slightly ahead" true (dupalot_peak >= dbds_peak)

let test_figure4_experiment () =
  let before, after = Harness.Experiments.figure4 () in
  Alcotest.(check bool) "estimate improves" true (after < before);
  Alcotest.(check bool) "saves at least the multiply" true
    (before -. after >= 1.8 -. 1e-6)

let suite =
  [
    test "peak delta" test_peak_delta;
    test "size and compile deltas" test_size_and_compile_deltas;
    test "geomean" test_geomean;
    test "runner measures" test_runner_measures_benchmark;
    test "runner row invariants" test_runner_row_invariants;
    test "report summarize" test_report_summarize;
    test "figure 4 experiment" test_figure4_experiment;
    test "raytrace shape (dupalot regression)" test_raytrace_shape;
    test "akkaPP shape (dupalot slightly ahead)" test_akkapp_shape;
  ]
