(** Tests for the §8 future-work extension: duplication over multiple
    merges along a path.

    The canonical shape is a nested conditional whose inner join jumps
    straight into the outer join:

    {v if (c1) { if (c2) { p = 1; } else { p = 2; } } else { p = 3; }
       return x / p; v}

    A single-level DST from an inner-branch predecessor stops at the
    inner join and sees nothing; only by continuing through the outer
    join does the divisor become the constant. *)

open Helpers
module G = Ir.Graph

let nested =
  {|
  int main(int x) {
    int p;
    if (x > 10) @0.8 {
      if (x > 100) @0.1 { p = 4; } else { p = 2; }
    } else {
      p = x % 7 + 3;
    }
    return x / p;
  }
  |}

let simulate config prog =
  let g = Option.get (Ir.Program.find_function prog "main") in
  let ctx = Opt.Phase.create ~program:prog () in
  Dbds.Simulation.simulate ctx config g

let test_plain_simulation_misses_chain () =
  let prog = compile nested in
  let candidates = simulate Dbds.Config.dbds prog in
  Alcotest.(check bool) "no path candidates without the extension" true
    (List.for_all (fun c -> c.Dbds.Candidate.path = []) candidates);
  (* The inner-join predecessors yield no single-level benefit: their DST
     ends at the inner join, before the division. *)
  Alcotest.(check bool)
    "single-level simulation finds only the outer merge" true
    (List.length candidates <= 2)

let test_path_simulation_finds_chain () =
  let prog = compile nested in
  let candidates = simulate Dbds.Config.dbds_paths prog in
  let path_candidates =
    List.filter (fun c -> c.Dbds.Candidate.path <> []) candidates
  in
  Alcotest.(check bool) "path candidates found" true (path_candidates <> []);
  (* The path through p=4 (or p=2) makes the division a shift: ~31 cycles. *)
  Alcotest.(check bool) "a path candidate carries the division win" true
    (List.exists
       (fun c ->
         c.Dbds.Candidate.benefit >= 31.0
         && List.mem Dbds.Candidate.Strength_reduce
              c.Dbds.Candidate.opportunities)
       path_candidates)

let test_path_duplication_end_to_end () =
  let prog = compile nested in
  let prog' = Ir.Program.copy prog in
  let _, stats = Dbds.Driver.optimize_program ~config:Dbds.Config.dbds_paths prog' in
  check_program_verifies prog';
  let t = Dbds.Driver.total_stats stats in
  Alcotest.(check bool) "duplicated along the path" true
    (t.Dbds.Driver.duplications_performed >= 2);
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "x=%d" x)
        (run_int prog [ x ]) (run_int prog' [ x ]))
    [ 200; 50; 5; 0; -13 ]

let test_path_extension_beats_iterated_plain () =
  (* Iteration (paper §5.2) only helps once a *first* duplication
     happened — but here the inner join offers zero single-level benefit,
     so plain DBDS never starts, no matter how many iterations.  The path
     extension prices the whole chain at once and wins: exactly the gap
     §8 describes. *)
  let result config =
    let prog = compile nested in
    let _ = Dbds.Driver.optimize_program ~config prog in
    let g = Option.get (Ir.Program.find_function prog "main") in
    G.fold_instrs g
      (fun n id ->
        match G.kind g id with Ir.Types.Binop (Ir.Types.Shr, _, _) -> n + 1 | _ -> n)
      0
  in
  let one_shot_paths =
    result { Dbds.Config.dbds_paths with Dbds.Config.max_iterations = 1 }
  in
  let iterated_plain = result Dbds.Config.dbds in
  Alcotest.(check bool) "path extension shifts in one iteration" true
    (one_shot_paths >= 1);
  Alcotest.(check int) "iterated plain DBDS cannot reach it" 0 iterated_plain

let test_path_respects_budget () =
  let config =
    { Dbds.Config.dbds_paths with Dbds.Config.size_budget = 1.0 }
  in
  let prog = compile nested in
  let _, stats = Dbds.Driver.optimize_program ~config prog in
  Alcotest.(check int) "no duplication under zero budget" 0
    (Dbds.Driver.total_stats stats).Dbds.Driver.duplications_performed

let test_path_length_limit () =
  (* A chain of three nested joins; max_path_length 2 must not produce
     paths longer than one extra merge. *)
  let src =
    {|
    int main(int x) {
      int p;
      if (x > 0) {
        if (x > 10) {
          if (x > 100) { p = 8; } else { p = 4; }
        } else { p = 2; }
      } else { p = x % 5 + 1; }
      return x / p;
    }
    |}
  in
  let prog = compile src in
  let config = { Dbds.Config.dbds_paths with Dbds.Config.max_path_length = 2 } in
  let candidates = simulate config prog in
  List.iter
    (fun c ->
      Alcotest.(check bool) "path length bounded" true
        (List.length c.Dbds.Candidate.path <= 1))
    candidates;
  (* And end-to-end still sound. *)
  let prog' = Ir.Program.copy prog in
  let _ = Dbds.Driver.optimize_program ~config prog' in
  check_program_verifies prog';
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "x=%d" x)
        (run_int prog [ x ]) (run_int prog' [ x ]))
    [ 500; 50; 5; -5 ]

let test_path_property_preservation () =
  (* Random programs under the path configuration stay sound. *)
  let obs p args =
    match
      Interp.Machine.run_full ~icache:Interp.Machine.no_icache ~fuel:2_000_000
        p ~args
    with
    | r, _, gs ->
        Interp.Machine.result_to_string r
        ^ String.concat ";"
            (List.map
               (fun (n, v) -> n ^ "=" ^ Interp.Machine.value_to_string v)
               gs)
    | exception Interp.Machine.Runtime_error m -> "fault " ^ m
  in
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      let prog = compile src in
      let prog' = Ir.Program.copy prog in
      let _ = Dbds.Driver.optimize_program ~config:Dbds.Config.dbds_paths prog' in
      check_program_verifies prog';
      List.iter
        (fun args ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d" seed)
            (obs prog args) (obs prog' args))
        [ [| 0; 0 |]; [| 3; -7 |]; [| 64; 9 |] ])
    [ 7; 42; 99; 345; 777; 1024; 4200 ]

let suite =
  [
    test "plain simulation misses the chain" test_plain_simulation_misses_chain;
    test "path simulation finds the chain" test_path_simulation_finds_chain;
    test "path duplication end to end" test_path_duplication_end_to_end;
    test "path extension beats iterated plain" test_path_extension_beats_iterated_plain;
    test "path respects budget" test_path_respects_budget;
    test "path length limit" test_path_length_limit;
    test "path preserves random programs" test_path_property_preservation;
  ]
