(** The fleet primitives: consistent-hash ring balance, minimal
    remapping and determinism; membership epochs, heartbeat crash
    detection, and the wire form of views. *)

open Helpers
module Ring = Service.Ring
module Member = Service.Member
module Sim = Simtest.Sched
module Simio = Simtest.Simio

(* A synthetic request population: a thousand distinct digest-shaped
   keys.  The ring hashes keys itself, so plain strings do. *)
let keys = List.init 1000 (fun i -> Printf.sprintf "digest-%04d" i)
let node_ids n = List.init n (fun i -> Printf.sprintf "node-%d" i)

let spread ring =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun k ->
      match Ring.lookup ring k with
      | Some id ->
          Hashtbl.replace tbl id (1 + Option.value (Hashtbl.find_opt tbl id) ~default:0)
      | None -> Alcotest.fail "lookup on a non-empty ring returned None")
    keys;
  tbl

(* Balance: with 64 vnodes per node, no node of a 5-node ring owns a
   wildly disproportionate share of 1000 keys.  The bound is loose
   (hashing, not perfection): every node holds something, and none
   holds more than 2.5x its fair share. *)
let test_ring_balance () =
  let ring = Ring.create (node_ids 5) in
  let tbl = spread ring in
  Alcotest.(check int) "every node owns keys" 5 (Hashtbl.length tbl);
  let fair = 1000 / 5 in
  Hashtbl.iter
    (fun id n ->
      if n > 5 * fair / 2 then
        Alcotest.failf "%s owns %d of 1000 keys (fair share %d)" id n fair)
    tbl

(* Minimal remapping — the property that makes digest sharding safe
   across membership changes: adding a node only steals keys for the
   new node (no key moves between two surviving nodes), and removing
   one only re-homes the keys it owned (about 1/N of the space). *)
let test_ring_minimal_remapping () =
  let before = Ring.create (node_ids 4) in
  let after = Ring.add before "node-9" in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let a = Ring.lookup before k and b = Ring.lookup after k in
      if a <> b then begin
        incr moved;
        Alcotest.(check (option string))
          "a remapped key lands on the new node" (Some "node-9") b
      end)
    keys;
  Alcotest.(check bool) "the new node took some keys" true (!moved > 0);
  Alcotest.(check bool)
    (Printf.sprintf "join remapped %d/1000 keys (expect ~1/5)" !moved)
    true
    (!moved < 450);
  let shrunk = Ring.remove before "node-2" in
  List.iter
    (fun k ->
      match (Ring.lookup before k, Ring.lookup shrunk k) with
      | Some "node-2", Some b ->
          Alcotest.(check bool) "re-homed key avoids the removed node" true
            (b <> "node-2")
      | Some a, Some b ->
          Alcotest.(check string) "a surviving node keeps its keys" a b
      | _ -> Alcotest.fail "lookup on a non-empty ring returned None")
    keys

(* Determinism: the ring is a pure function of the node-id set — not of
   list order, duplicates, or which process builds it.  Equal inputs
   give equal owners for every key. *)
let test_ring_deterministic () =
  let a = Ring.create [ "n1"; "n2"; "n3" ] in
  let b = Ring.create [ "n3"; "n1"; "n2"; "n1" ] in
  Alcotest.(check (list string)) "same node set" (Ring.nodes a) (Ring.nodes b);
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "same owner regardless of construction order" (Ring.lookup a k)
        (Ring.lookup b k))
    keys;
  (* add/remove are idempotent and cancel. *)
  let c = Ring.remove (Ring.add a "n4") "n4" in
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "add then remove restores every owner" (Ring.lookup a k)
        (Ring.lookup c k))
    keys

(* Successors drive replica placement: distinct nodes, owner first,
   never longer than the ring. *)
let test_ring_successors () =
  let ring = Ring.create (node_ids 4) in
  List.iter
    (fun k ->
      let succ = Ring.successors ring k ~n:3 in
      Alcotest.(check int) "three distinct successors" 3 (List.length succ);
      Alcotest.(check int) "no duplicates" 3
        (List.length (List.sort_uniq compare succ));
      Alcotest.(check (option string))
        "owner leads the successor list" (Ring.lookup ring k)
        (match succ with s :: _ -> Some s | [] -> None))
    keys;
  Alcotest.(check int) "capped at the ring size" 4
    (List.length (Ring.successors ring "k" ~n:9));
  Alcotest.(check (list string)) "empty ring, empty successors" []
    (Ring.successors (Ring.create []) "k" ~n:3)

(* Membership epochs: joins, leaves and crashes each bump the epoch
   exactly when the roster changes; refreshes do not. *)
let test_member_epochs () =
  let m = Member.create () in
  let v1 = Member.join m ~id:"a" ~addr:"/run/a.sock" in
  let v2 = Member.join m ~id:"b" ~addr:"/run/b.sock" in
  Alcotest.(check bool) "join bumps the epoch" true
    (v2.Member.v_epoch > v1.Member.v_epoch);
  let v3 = Member.join m ~id:"b" ~addr:"/run/b.sock" in
  Alcotest.(check int) "an identical re-join is a refresh, not a change"
    v2.Member.v_epoch v3.Member.v_epoch;
  (match Member.beat m ~id:"a" with
  | Some e -> Alcotest.(check int) "beat answers the current epoch" v3.Member.v_epoch e
  | None -> Alcotest.fail "beat for a joined node answered unknown");
  Alcotest.(check (option int)) "beat for a stranger answers None" None
    (Member.beat m ~id:"ghost");
  let v4 = Member.leave m ~id:"a" in
  Alcotest.(check bool) "leave bumps the epoch" true
    (v4.Member.v_epoch > v3.Member.v_epoch);
  Alcotest.(check (list (pair string string)))
    "view lists the survivors, sorted"
    [ ("b", "/run/b.sock") ]
    v4.Member.v_nodes

(* Crash detection under the simulated clock: a node that stops beating
   is swept out after the timeout; a beating one survives. *)
let test_member_sweep () =
  let sched = Sim.create ~seed:0 () in
  let io = Simio.create sched in
  let env = Simio.env io in
  let out =
    Sim.run sched (fun () ->
        let m = Member.create ~env ~timeout_s:1.0 () in
        ignore (Member.join m ~id:"quick" ~addr:"/q");
        ignore (Member.join m ~id:"dead" ~addr:"/d");
        Alcotest.(check (list string)) "fresh roster, nothing expires" []
          (Member.sweep m);
        env.Service.Env.sleep 0.6;
        ignore (Member.beat m ~id:"quick");
        env.Service.Env.sleep 0.6;
        (* "dead" last beat 1.2s ago, "quick" 0.6s ago. *)
        Alcotest.(check (list string)) "the silent node is swept" [ "dead" ]
          (Member.sweep m);
        Alcotest.(check (option int)) "swept nodes must re-join" None
          (Member.beat m ~id:"dead");
        Alcotest.(check bool) "the beating node survives" true
          (Member.beat m ~id:"quick" <> None))
  in
  Alcotest.(check bool) "clean schedule" true out.Sim.ok

(* The wire form: views travel as "id addr" lines and parse back. *)
let test_member_wire_form () =
  let nodes = [ ("a", "/run/a.sock"); ("b", "/run/b.sock") ] in
  Alcotest.(check (option (list (pair string string))))
    "nodes round-trip" (Some nodes)
    (Member.nodes_of_string (Member.string_of_nodes nodes));
  Alcotest.(check (option (list (pair string string))))
    "empty roster round-trips" (Some [])
    (Member.nodes_of_string (Member.string_of_nodes []));
  Alcotest.(check (option (list (pair string string))))
    "a torn line is rejected" None
    (Member.nodes_of_string "a-no-addr")

let suite =
  [
    test "ring: 1000 digests balance across 5 nodes" test_ring_balance;
    test "ring: join/leave remap minimally" test_ring_minimal_remapping;
    test "ring: pure function of the node set" test_ring_deterministic;
    test "ring: successors are distinct and owner-led" test_ring_successors;
    test "member: epochs track roster changes" test_member_epochs;
    test "member: silent nodes are swept as crashed" test_member_sweep;
    test "member: views survive the wire" test_member_wire_form;
  ]
